(* Sharded publication-matching pool (OCaml 5 domains).

   The daemon's hot cost per publication is decode (Codec + re-intern)
   plus the NFA match. Both depend only on the PRT, never on the SRT or
   the covering state, so they can leave the event loop: the pool
   partitions the PRT by advertisement-root symbol — the same
   discriminator as the SRT bucket index ([Rtable.Srt.sub_root]) — and
   runs one [Rtable.Prt.Shard] per worker domain. A subscription
   anchored at root [n] lives only on [owner n]; an unanchored
   subscription (relative / leading [//] / leading wildcard) is
   replicated to every shard. A publication's path starts at its root
   element, so exactly one shard — [owner root] — sees every
   subscription that can match it, and the pool matches each
   publication exactly once.

   Determinism: outputs must be byte-identical to the sequential
   engine. Three mechanisms carry that:

   - every inbound line gets a global arrival sequence number ([seq]);
     shard entries are stamped with their subscribing line's seq, and
     [Shard.match_pub] sorts by stamp — the same relative order as the
     authoritative table's [nfa_seq], since both are monotone over the
     arrival order of inserted subscriptions;
   - each worker's ingress is a bounded SPSC ring, so shard updates
     pushed at arrival time are seen by every later publication on that
     shard and by no earlier one (FIFO);
   - results are merged through a reorder buffer keyed by seq: nothing
     is emitted until every lower seq has been, so the per-connection
     output byte streams equal the sequential engine's.

   Backpressure: a full ingress ring makes [submit_publish] report
   failure; the daemon then drains the reorder buffer (freeing results)
   and stops adding connection fds to its read set while the in-flight
   count sits above its watermark, pushing the pressure into TCP.
   Workers write one byte to a self-pipe per result batch so the
   daemon's [select] wakes as soon as decisions are ready. *)

open Xroute_core
module Spsc = Xroute_support.Spsc
module Tsync = Xroute_support.Tsync
module Reorder = Xroute_support.Reorder
module Shard = Rtable.Prt.Shard

let src = Logs.Src.create "xroute.pool" ~doc:"Sharded matching pool"

module Log = (val Logs.src_log src : Logs.LOG)

(* What a worker hands back for one publication. Stage durations are
   measured on the worker so the daemon can emit parse/match span
   leaves that reflect where the time actually went. *)
type outcome =
  | Routed of {
      pub : Xroute_xml.Xml_paths.publication;
      ctx : Message.trace_ctx option;
      payloads : Rtable.Prt.payload list;
      ops : int; (* automaton entries examined *)
      parse_ms : float;
      match_ms : float;
    }
  | Undecodable of Codec.error

type wcmd =
  | Sub of { stamp : int; id : Message.sub_id; xpe : Xroute_xpath.Xpe.t; hop : Rtable.endpoint }
  | Unsub of Message.sub_id
  | Pub of { seq : int; payload : string }

type worker = {
  index : int;
  shard : Shard.t;
  ingress : wcmd Spsc.t;
  results : (int * outcome) Spsc.t;
  processed : int Tsync.Atomic.t; (* commands the worker has completed *)
  mutable submitted : int; (* commands the main domain has pushed *)
  mutable domain : unit Domain.t option;
}

(* Reorder-buffer payload of a pending publication; control lines carry
   their emission thunk directly (see Xroute_support.Reorder). *)
type pub_meta = { from : Rtable.endpoint; batch_t : float }

type t = {
  workers : worker array;
  stop : bool Tsync.Atomic.t;
  mutable seq : int; (* next global arrival sequence *)
  reorder : (pub_meta, outcome) Reorder.t;
  mutable in_flight : int; (* publications submitted, not yet emitted *)
  mutable pubs_routed : int; (* publications fully emitted *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
}

let domains t = Array.length t.workers
let in_flight t = t.in_flight
let wake_fd t = t.wake_r
let pubs_routed t = t.pubs_routed
let shard t i = t.workers.(i).shard

(* Deterministic partition: hash the root element's NAME, not its
   interned id — ids depend on interning order, which differs between a
   fresh daemon and a restarted one, and the owner of a root must not. *)
let owner t root_name = Hashtbl.hash root_name mod Array.length t.workers

(* ---------------- worker domain ---------------- *)

let wake_byte = Bytes.make 1 '!'

let worker_loop ~stop ~wake_w w =
  let process cmd =
    match cmd with
    | Sub { stamp; id; xpe; hop } ->
      Shard.insert w.shard ~stamp id xpe hop;
      false
    | Unsub id ->
      Shard.remove w.shard id;
      false
    | Pub { seq; payload } ->
      let t0 = Unix.gettimeofday () in
      let outcome =
        match Codec.decode payload with
        | Ok (Message.Publish { pub; trail = _; ctx }) ->
          let t1 = Unix.gettimeofday () in
          let payloads, ops = Shard.match_pub w.shard pub in
          let t2 = Unix.gettimeofday () in
          Routed
            {
              pub;
              ctx;
              payloads;
              ops;
              parse_ms = (t1 -. t0) *. 1000.0;
              match_ms = (t2 -. t1) *. 1000.0;
            }
        | Ok _ -> Undecodable { Codec.offset = 0; reason = "pool: not a publication" }
        | Error e -> Undecodable e
      in
      (* The ring is sized to the pool's in-flight bound, so this spin
         is defensive only. *)
      while not (Spsc.push w.results (seq, outcome)) do
        Domain.cpu_relax ()
      done;
      true
  in
  (* Drain everything queued, then signal once per batch: on a loaded
     loop one context switch covers hundreds of publications. *)
  let rec drain produced =
    match Spsc.pop w.ingress with
    | Some cmd ->
      let p = process cmd in
      Tsync.Atomic.incr w.processed;
      drain (produced || p)
    | None -> produced
  in
  let wake () =
    (* A pending byte already wakes the daemon; a full pipe means one is
       pending, so EAGAIN (and a racing shutdown's EPIPE/EBADF) is fine. *)
    try ignore (Unix.write wake_w wake_byte 0 1) with Unix.Unix_error _ -> ()
  in
  let rec run () =
    if not (Tsync.Atomic.get stop) then begin
      if drain false then wake ();
      if Spsc.is_empty w.ingress then begin
        (* Brief spin for the low-latency case, then yield the core —
           a spinning worker would starve the event loop on small
           machines. *)
        let spins = ref 200 in
        while !spins > 0 && Spsc.is_empty w.ingress && not (Tsync.Atomic.get stop) do
          Domain.cpu_relax ();
          decr spins
        done;
        if Spsc.is_empty w.ingress && not (Tsync.Atomic.get stop) then Unix.sleepf 0.0002
      end;
      run ()
    end
  in
  run ()

(* ---------------- construction / teardown ---------------- *)

(* Ring sizing: the daemon's read watermark keeps global in-flight
   below [ingress capacity * 4]; results get headroom above that so a
   worker can never be blocked on its result ring while the main domain
   is itself spinning on a full ingress (a 1-core deadlock otherwise). *)
let default_ingress_capacity = 1024

(* [ingress_capacity] is overridable so the backpressure path (full
   ring -> submit_publish = false -> daemon drains and retries) can be
   driven deterministically by tests with a tiny ring. *)
let create ?(ingress_capacity = default_ingress_capacity) ~domains () =
  if domains < 1 then invalid_arg "Shard_pool.create: need at least one domain";
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let stop = Tsync.Atomic.make ~name:"pool.stop" false in
  let workers =
    Array.init domains (fun index ->
        {
          index;
          shard = Shard.create ();
          ingress = Spsc.create ingress_capacity;
          results = Spsc.create (ingress_capacity * 16);
          processed = Tsync.Atomic.make ~name:"pool.processed" 0;
          submitted = 0;
          domain = None;
        })
  in
  let t =
    {
      workers;
      stop;
      seq = 0;
      reorder = Reorder.create ();
      in_flight = 0;
      pubs_routed = 0;
      wake_r;
      wake_w;
    }
  in
  Array.iter
    (fun w -> w.domain <- Some (Domain.spawn (fun () -> worker_loop ~stop ~wake_w w)))
    workers;
  t

let stop t =
  if not (Tsync.Atomic.get t.stop) then begin
    Tsync.Atomic.set t.stop true;
    Array.iter
      (fun w ->
        match w.domain with
        | Some d ->
          Domain.join d;
          w.domain <- None
        | None -> ())
      t.workers;
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    try Unix.close t.wake_w with Unix.Unix_error _ -> ()
  end

(* ---------------- main-domain feeding ---------------- *)

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

(* Move finished worker results into the reorder buffer. Main domain
   only. *)
let pump t =
  Array.iter
    (fun w ->
      let rec go () =
        match Spsc.pop w.results with
        | Some (seq, outcome) ->
          if not (Reorder.complete t.reorder ~seq outcome) then
            (* Can't happen under the seq contract; drop loudly. *)
            Log.err (fun m -> m "pool: result for unknown seq %d" seq);
          go ()
        | None -> ()
      in
      go ())
    t.workers

let push_cmd t w cmd =
  (* Shard updates must not be dropped; the worker drains its own
     ingress, so waiting (while keeping results flowing) always makes
     progress. *)
  while not (Spsc.push w.ingress cmd) do
    pump t;
    Domain.cpu_relax ()
  done;
  w.submitted <- w.submitted + 1

let push_control t ~seq thunk = Reorder.put_control t.reorder ~seq thunk

let subscribe t ~stamp id xpe hop =
  match Rtable.Srt.sub_root xpe with
  | Some root ->
    push_cmd t
      t.workers.(owner t (Xroute_support.Symbol.name root))
      (Sub { stamp; id; xpe; hop })
  | None ->
    Array.iter (fun w -> push_cmd t w (Sub { stamp; id; xpe; hop })) t.workers

let unsubscribe t id = Array.iter (fun w -> push_cmd t w (Unsub id)) t.workers

let submit_publish t ~seq ~from ~batch_t ~payload ~root =
  let w = t.workers.(owner t root) in
  if Spsc.push w.ingress (Pub { seq; payload }) then begin
    w.submitted <- w.submitted + 1;
    Reorder.put_pending t.reorder ~seq { from; batch_t };
    t.in_flight <- t.in_flight + 1;
    true
  end
  else false

(* Emit everything ready, in seq order. [publish] receives each
   finished publication (the daemon finishes routing, spans and
   dispatch there); control thunks run here. *)
let drain t ~publish =
  pump t;
  let rec emit () =
    match Reorder.pop_ready t.reorder with
    | `Wait -> ()
    | `Control thunk ->
      thunk ();
      emit ()
    | `Emit (seq, meta, outcome) ->
      t.in_flight <- t.in_flight - 1;
      (* Only decoded publications count: the per-shard matched
         counters must sum to this gauge (shard audit). *)
      (match outcome with Routed _ -> t.pubs_routed <- t.pubs_routed + 1 | Undecodable _ -> ());
      publish ~seq ~from:meta.from ~batch_t:meta.batch_t outcome;
      pump t;
      emit ()
  in
  emit ()

(* Consume pending wake bytes (call when [wake_fd] selects readable). *)
let drain_wake t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r buf 0 64 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  go ()

(* ---------------- classification ---------------- *)

(* Root element of a publication wire line ("1|P|meta|trail|steps|attrs"
   — the steps field is comma-separated, root first), without a full
   decode: the main domain only needs the shard key. [None] means "not
   a well-formed publication line"; the caller falls back to the
   sequential control path, whose full decode reproduces the
   sequential engine's error handling. *)
let publish_root payload =
  let n = String.length payload in
  if n < 4 || String.sub payload 0 4 <> "1|P|" then None
  else
    match String.index_from_opt payload 4 '|' with
    | None -> None
    | Some bar2 -> (
      match String.index_from_opt payload (bar2 + 1) '|' with
      | None -> None
      | Some bar3 ->
        let steps_start = bar3 + 1 in
        let steps_end =
          match String.index_from_opt payload steps_start '|' with
          | Some b -> b
          | None -> n
        in
        let root_end =
          let rec go i = if i >= steps_end then steps_end else if payload.[i] = ',' then i else go (i + 1) in
          go steps_start
        in
        if root_end = steps_start then None
        else
          let raw = String.sub payload steps_start (root_end - steps_start) in
          (match Codec.unescape raw with Ok r when r <> "" -> Some r | Ok _ | Error _ -> None))

(* ---------------- quiescence, audit, obs ---------------- *)

(* Wait until every worker has finished everything pushed to it. Only
   meaningful after the caller has drained its publications
   ([in_flight] = 0); afterwards, reading shard state from the main
   domain is race-free (the [processed] atomics carry the
   happens-before edge). *)
let quiesce t =
  Array.iter
    (fun w ->
      while Tsync.Atomic.get w.processed < w.submitted do
        Unix.sleepf 0.0002
      done)
    t.workers

(* Plain-data snapshot for [Xroute_check.Check.audit_shards]. [subs] is
   the authoritative PRT content (id, XPE); call at quiescence. *)
let view t ~subs =
  {
    Xroute_check.Check.shv_domains = Array.length t.workers;
    shv_entries =
      Array.to_list (Array.map (fun w -> (w.index, Shard.entries w.shard)) t.workers);
    shv_subs =
      List.map
        (fun (id, xpe) ->
          match Rtable.Srt.sub_root xpe with
          | Some root -> (id, Some (owner t (Xroute_support.Symbol.name root)))
          | None -> (id, None))
        subs;
    shv_shard_pubs =
      Array.to_list
        (Array.map (fun w -> (w.index, Shard.pubs_matched w.shard)) t.workers);
    shv_pool_pubs = t.pubs_routed;
  }

(* Must-fail mutation hook: break one shard's automaton/partition. *)
let corrupt_for_test t = Shard.corrupt_for_test t.workers.(0).shard
