(* Shared framing for multi-line wire replies (STATS|, AUDIT|, TRACE|). *)

let needs_escape c = c = '%' || c = '|' || c = '\n' || c = '\r'

let escape s =
  if String.for_all (fun c -> not (needs_escape c)) s then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if needs_escape c then Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let unescape s =
  if not (String.contains s '%') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i >= n then Buffer.contents buf
      else if s.[i] = '%' && i + 2 < n then begin
        match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some code ->
          Buffer.add_char buf (Char.chr code);
          go (i + 3)
        | None ->
          Buffer.add_char buf s.[i];
          go (i + 1)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 0
  end

let send ~enqueue ~tag ?(begin_args = []) ?(end_args = []) ~line_tag lines =
  let with_args base = function [] -> base | args -> base ^ "|" ^ String.concat "|" args in
  enqueue (with_args (tag ^ "|BEGIN") begin_args);
  List.iter (fun l -> enqueue (line_tag ^ "|" ^ l)) lines;
  enqueue (with_args (tag ^ "|END") end_args)
