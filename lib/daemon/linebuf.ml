(* Incremental line framing buffer.

   The daemon and the client both accumulate socket reads and split
   them into '\n'-terminated protocol lines. Doing that with
   [Buffer.contents] re-copies the whole backlog on every read, so a
   client draining an N-byte burst pays O(N^2) — the perf bug this
   module replaces. Here the bytes live in one growable region with a
   consumed prefix ([start]), and [next_line] resumes its newline scan
   where the previous scan stopped ([scan]), so every byte is copied
   into the buffer once, scanned once, and copied out once: O(N) for
   the whole burst regardless of read fragmentation.

   Compaction happens only when it is free (buffer fully consumed) or
   when growth would otherwise be needed — "compact only when
   consumed", never per read. *)

type t = {
  mutable buf : Bytes.t;
  mutable start : int; (* first unconsumed byte *)
  mutable len : int; (* end of valid data (exclusive) *)
  mutable scan : int; (* next position to look for '\n'; start <= scan <= len *)
}

let create ?(initial = 4096) () =
  { buf = Bytes.create (max 64 initial); start = 0; len = 0; scan = 0 }

let length t = t.len - t.start

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.scan <- 0

(* Ensure room for [n] more bytes: slide the live region down if the
   consumed prefix alone frees enough space, otherwise grow. *)
let reserve t n =
  let live = t.len - t.start in
  if t.len + n > Bytes.length t.buf then
    if live + n <= Bytes.length t.buf then begin
      Bytes.blit t.buf t.start t.buf 0 live;
      t.scan <- t.scan - t.start;
      t.start <- 0;
      t.len <- live
    end
    else begin
      let size = ref (2 * Bytes.length t.buf) in
      while live + n > !size do
        size := 2 * !size
      done;
      let grown = Bytes.create !size in
      Bytes.blit t.buf t.start grown 0 live;
      t.buf <- grown;
      t.scan <- t.scan - t.start;
      t.start <- 0;
      t.len <- live
    end

let add_subbytes t src pos n =
  reserve t n;
  Bytes.blit src pos t.buf t.len n;
  t.len <- t.len + n

let add_string t s = add_subbytes t (Bytes.unsafe_of_string s) 0 (String.length s)

let next_line t =
  match Bytes.index_from_opt t.buf t.scan '\n' with
  | Some i when i < t.len ->
    let line = Bytes.sub_string t.buf t.start (i - t.start) in
    t.start <- i + 1;
    t.scan <- t.start;
    if t.start = t.len then clear t;
    Some line
  | _ ->
    (* No newline in the live region: remember we scanned it all, so
       the next call only looks at freshly added bytes. *)
    t.scan <- t.len;
    None
