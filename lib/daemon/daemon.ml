(* TCP deployment of a content-based XML router.

   One daemon hosts one {!Xroute_core.Broker} behind a listening socket
   and drives it with a single-threaded select loop. Peers speak a
   line-oriented protocol:

     HELLO|broker|<id>          identify as neighbor broker <id>
     HELLO|client|<id>          identify as client <id>
     M|<codec line>             a routed message (see Xroute_core.Codec)
     AUDIT                      routing-state audit of the hosted broker

   Outgoing neighbor links follow the lower-id-dials convention: the
   daemon with the smaller id connects, the other accepts; this yields
   exactly one TCP connection per overlay edge. Connections are retried
   while the loop runs, so start order does not matter. *)

open Xroute_core
module Mono = Xroute_support.Mono
module Span = Xroute_obs.Span
module Timeseries = Xroute_obs.Timeseries
module Recorder = Xroute_obs.Recorder

let log_src = Logs.Src.create "xroute.daemon" ~doc:"TCP broker daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

type conn = {
  fd : Unix.file_descr;
  mutable endpoint : Rtable.endpoint option; (* set after HELLO *)
  mutable connecting : bool; (* non-blocking connect still in progress *)
  inbuf : Linebuf.t;
  (* Output path: lines of a burst coalesce into [outbuf]; at write time
     the accumulated bytes move (one copy) onto [outq] and are written
     chunk by chunk, [out_off] marking the sent prefix of the head chunk
     — so a partial write never re-copies the unsent tail, and enqueue
     cost is O(line), not O(total buffered). *)
  outbuf : Buffer.t; (* freshly enqueued bytes *)
  outq : string Queue.t; (* chunks awaiting write *)
  mutable out_off : int; (* sent prefix of the head chunk *)
  mutable closed : bool;
  (* An in-progress incoming FEDSTATS reply frame from this peer:
     (sub-request id, F| payload lines so far, newest first). One frame
     at a time per connection — the daemon never interleaves frames on
     one socket. *)
  mutable fed_in : (string * string list) option;
}

(* One outstanding federation pull: we answered [fp_reqid] on
   [fp_reply] only once every forwarded sub-pull ([fp_subid], sent to
   [fp_waiting]) has replied, been disconnected, or the deadline
   passes — then the accumulated view (own summary merged with every
   neighbor view that made it back) is framed back. *)
type fed_pending = {
  fp_reply : conn;
  fp_reqid : string;
  fp_subid : string;
  mutable fp_waiting : int list;
  mutable fp_view : Xroute_obs.Health.view;
  fp_deadline : float; (* Mono ms *)
}

type t = {
  broker : Broker.t;
  listen_fd : Unix.file_descr;
  port : int;
  neighbors : (int * (string * int)) list; (* id -> address *)
  max_write_chunk : int; (* per-write byte cap (tests the offset path) *)
  clock : Mono.t; (* monotonic wall clock, ms (span timestamps) *)
  spans : Span.t; (* causal spans of publications through this broker *)
  timeseries : Timeseries.t; (* periodic registry snapshots *)
  snapshot_period : float; (* ms between snapshots *)
  recorder : Recorder.t option; (* flight recorder, when --flight-dir set *)
  pool : Shard_pool.t option; (* domain pool, when --domains > 1 *)
  shard_gauges : (Xroute_obs.Metrics.gauge * Xroute_obs.Metrics.gauge * Xroute_obs.Metrics.gauge) array;
  pool_gauge : Xroute_obs.Metrics.gauge option; (* publications routed via the pool *)
  read_buf : Bytes.t; (* reusable socket read buffer *)
  resolved : (string, Unix.inet_addr) Hashtbl.t; (* DNS memo for dials *)
  health : Xroute_obs.Health.t; (* this broker's health summary *)
  telemetry : bool; (* when false, skip health recording (bench switch) *)
  mutable fed_pending : fed_pending list;
  mutable fed_seq : int; (* fresh sub-request ids *)
  mutable last_snapshot : float;
  mutable conns : conn list;
  mutable last_dial : float;
  mutable stop_requested : bool;
}

(* How long a federation pull waits for neighbor replies before
   answering with what it has (wall ms). *)
let fed_timeout_ms = 1000.0

(* Stop pulling new bytes off connections while this many publications
   sit between submission and emission: the kernel socket buffers fill
   and TCP pushes the pressure back to the senders. *)
let read_watermark = 4096

let broker t = t.broker
let port t = t.port
let spans t = t.spans
let timeseries t = t.timeseries
let recorder t = t.recorder

(* ---------------- low-level helpers ---------------- *)

let conn_of fd =
  Unix.set_nonblock fd;
  {
    fd;
    endpoint = None;
    connecting = false;
    inbuf = Linebuf.create ~initial:256 ();
    outbuf = Buffer.create 256;
    outq = Queue.create ();
    out_off = 0;
    closed = false;
    fed_in = None;
  }

let enqueue conn line =
  if not conn.closed then begin
    Buffer.add_string conn.outbuf line;
    Buffer.add_char conn.outbuf '\n'
  end

let pending_out conn =
  Buffer.length conn.outbuf > 0 || not (Queue.is_empty conn.outq)

let close_conn t conn =
  if not conn.closed then begin
    conn.closed <- true;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c -> c != conn) t.conns;
    (* A neighbor that vanishes mid-pull will never answer: stop waiting
       for it (the sweep in [step] replies once the list empties). *)
    (match conn.endpoint with
    | Some (Rtable.Neighbor nid) ->
      List.iter
        (fun p -> p.fp_waiting <- List.filter (fun id -> id <> nid) p.fp_waiting)
        t.fed_pending
    | Some (Rtable.Client _) | None -> ());
    match conn.endpoint with
    | Some ep -> Log.info (fun m -> m "broker %d: %a disconnected" (Broker.id t.broker) Rtable.pp_endpoint ep)
    | None -> ()
  end

let conn_for t ep =
  List.find_opt
    (fun c ->
      (not c.closed)
      && match c.endpoint with Some e -> Rtable.endpoint_equal e ep | None -> false)
    t.conns

(* ---------------- creation ---------------- *)

let create ?(strategy = Broker.default_strategy) ?(max_write_chunk = max_int)
    ?(snapshot_period = 1000.0) ?flight_dir ?(domains = 1) ?(telemetry = true) ~id ~port
    ~neighbors () =
  if max_write_chunk <= 0 then invalid_arg "Daemon.create: max_write_chunk <= 0";
  if snapshot_period <= 0.0 then invalid_arg "Daemon.create: snapshot_period <= 0";
  if domains < 1 then invalid_arg "Daemon.create: domains < 1";
  (* The pool's determinism argument needs stamp-ordered NFA matching:
     the tree engine reports in covering-DFS order and trail routing
     matches against a trail-dependent subset, so neither can be merged
     byte-identically from per-shard results. *)
  if domains > 1 && strategy.Broker.match_engine <> Rtable.Prt.Nfa then
    invalid_arg "Daemon.create: --domains > 1 requires the nfa match engine";
  if domains > 1 && strategy.Broker.trail_routing then
    invalid_arg "Daemon.create: --domains > 1 is incompatible with trail routing";
  (* Writes to a peer that vanished must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen listen_fd 16;
  Unix.set_nonblock listen_fd;
  let actual_port =
    match Unix.getsockname listen_fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let broker = Broker.create ~strategy ~id ~neighbors:(List.map fst neighbors) () in
  Log.info (fun m -> m "broker %d listening on port %d" id actual_port);
  let pool = if domains > 1 then Some (Shard_pool.create ~domains ()) else None in
  let module M = Xroute_obs.Metrics in
  let reg = Broker.metrics broker in
  let shard_gauges =
    match pool with
    | None -> [||]
    | Some _ ->
      Array.init domains (fun i ->
          ( M.gauge reg ~help:"shard subscriptions" (Printf.sprintf "xroute_shard_%d_entries" i),
            M.gauge reg ~help:"shard publications matched" (Printf.sprintf "xroute_shard_%d_pubs" i),
            M.gauge reg ~help:"shard match operations" (Printf.sprintf "xroute_shard_%d_match_ops" i) ))
  in
  let pool_gauge =
    Option.map
      (fun _ -> M.gauge reg ~help:"publications routed via the domain pool" "xroute_pool_pubs_routed")
      pool
  in
  {
    broker;
    listen_fd;
    port = actual_port;
    neighbors;
    max_write_chunk;
    clock = Mono.create ~source:(fun () -> Unix.gettimeofday () *. 1000.0) ();
    (* Disjoint id bases keep span ids globally unique when a client
       merges TRACE| replies from several daemons. *)
    spans = Span.create ~id_base:(id * 1_000_000_000) ();
    timeseries = Timeseries.create (Broker.metrics broker);
    snapshot_period;
    recorder = Option.map (fun dir -> Recorder.create ~dir ()) flight_dir;
    pool;
    shard_gauges;
    pool_gauge;
    read_buf = Bytes.create 65536;
    resolved = Hashtbl.create 4;
    health = Xroute_obs.Health.create id;
    telemetry;
    fed_pending = [];
    fed_seq = 0;
    last_snapshot = 0.0;
    conns = [];
    last_dial = 0.0;
    stop_requested = false;
  }

let request_stop t = t.stop_requested <- true
let pool t = t.pool
let health t = t.health

(* Per-shard observability counters, mirrored into the registry so
   STATS| and the timeseries snapshots carry them. *)
let refresh_pool_gauges t =
  match t.pool with
  | None -> ()
  | Some pool ->
    let module M = Xroute_obs.Metrics in
    Array.iteri
      (fun i (g_entries, g_pubs, g_ops) ->
        let shard = Shard_pool.shard pool i in
        M.set_int g_entries (Rtable.Prt.Shard.size shard);
        M.set_int g_pubs (Rtable.Prt.Shard.pubs_matched shard);
        M.set_int g_ops (Rtable.Prt.Shard.match_ops shard))
      t.shard_gauges;
    Option.iter (fun g -> M.set_int g (Shard_pool.pubs_routed pool)) t.pool_gauge

(* ---------------- protocol ---------------- *)

let send_message t ep (msg : Message.t) =
  match conn_for t ep with
  | Some conn ->
    (if t.telemetry then
       match ep with
       | Rtable.Neighbor n -> Xroute_obs.Health.record_send t.health ~peer:n
       | Rtable.Client _ -> ());
    enqueue conn ("M|" ^ Codec.encode msg)
  | None ->
    (if t.telemetry then begin
       Xroute_obs.Health.record_drop t.health;
       match ep with
       | Rtable.Neighbor n -> Xroute_obs.Health.record_link_drop t.health ~peer:n
       | Rtable.Client _ -> ()
     end);
    Log.warn (fun m ->
        m "broker %d: no connection for %a, dropping %a" (Broker.id t.broker)
          Rtable.pp_endpoint ep Message.pp msg)

let dispatch t outputs = List.iter (fun (ep, msg) -> send_message t ep msg) outputs

(* STATS|: dump the broker's metrics registry. The exposition is
   multi-line, so it is framed for the line protocol (Framing.send):
   STATS|BEGIN|<fmt>, one S|<escaped line> per exposition line, then
   STATS|END. *)
let send_stats t conn fmt =
  Broker.refresh_metrics t.broker;
  refresh_pool_gauges t;
  let reg = Broker.metrics t.broker in
  let fmt_name, body =
    match fmt with
    | `Json -> ("json", Xroute_obs.Metrics.to_json reg)
    | `Prom -> ("prom", Xroute_obs.Metrics.to_prometheus reg)
  in
  Framing.send ~enqueue:(enqueue conn) ~tag:"STATS" ~begin_args:[ fmt_name ] ~line_tag:"S"
    (List.filter_map
       (fun l -> if l = "" then None else Some (Framing.escape l))
       (String.split_on_char '\n' body))

(* Dump a flight record: the span ring, the (refreshed) registry, and
   the latest per-second rates. Called when an audit reports an
   error-severity finding; failures are logged, never raised. *)
let flight_dump t ~reason =
  match t.recorder with
  | None -> ()
  | Some r -> (
    Broker.refresh_metrics t.broker;
    let at = Mono.now t.clock in
    Timeseries.snapshot t.timeseries ~at;
    match
      Recorder.trigger r ~reason ~at ~metrics:(Broker.metrics t.broker)
        ~spans:(Span.to_list t.spans)
        ~rates:(Timeseries.rates t.timeseries) ()
    with
    | Ok path -> Log.info (fun m -> m "broker %d: flight record %s" (Broker.id t.broker) path)
    | Error e -> Log.warn (fun m -> m "broker %d: flight dump failed: %s" (Broker.id t.broker) e))

(* AUDIT: run the routing-state audit (Xroute_check) on the hosted
   broker and stream the findings, framed like STATS|: AUDIT|BEGIN, one
   A|<severity>|<code>|<subject>|<witness> per finding, then
   AUDIT|END|<errors>|<warnings>. Fields are reversibly escaped
   (Framing.escape) so '|' and newlines survive the line protocol
   intact. An error-severity finding triggers a flight-recorder dump
   when the daemon was given a flight directory. *)
let send_audit t conn =
  let findings = Xroute_check.Check.audit_broker t.broker in
  let count sev =
    List.length (List.filter (fun f -> f.Xroute_check.Finding.severity = sev) findings)
  in
  let errors = count Xroute_check.Finding.Error in
  Framing.send ~enqueue:(enqueue conn) ~tag:"AUDIT"
    ~end_args:[ string_of_int errors; string_of_int (count Xroute_check.Finding.Warning) ]
    ~line_tag:"A"
    (List.map
       (fun (f : Xroute_check.Finding.t) ->
         String.concat "|"
           (List.map Framing.escape
              [
                Xroute_check.Finding.severity_to_string f.severity;
                f.code;
                f.subject;
                f.witness;
              ]))
       findings);
  if errors > 0 then flight_dump t ~reason:(Printf.sprintf "audit reported %d errors" errors)

(* TRACE|<trace-id>: stream the retained spans of one trace, framed as
   TRACE|BEGIN|<id>, one T|<span wire line> per span (Span.to_wire_line
   escapes its own fields), then TRACE|END|<count>. Clients merge the
   replies of several daemons to reassemble a cross-broker trace. *)
let send_trace t conn key =
  match int_of_string_opt key with
  | None -> Log.warn (fun m -> m "malformed TRACE key %S" key)
  | Some trace ->
    let spans = Span.spans_for t.spans ~trace in
    Framing.send ~enqueue:(enqueue conn) ~tag:"TRACE" ~begin_args:[ key ]
      ~end_args:[ string_of_int (List.length spans) ]
      ~line_tag:"T"
      (List.map Span.to_wire_line spans)

(* FEDSTATS|<reqid>|<ttl>|<seen>: pull the overlay's health summaries,
   hop-bounded by <ttl>, with <seen> (comma-separated broker ids) as
   origin-id loop suppression — a broker already in <seen> is neither
   asked again nor asked to forward, so the pull terminates on cyclic
   overlays; a broker reached twice through a diamond merges
   idempotently (views key by origin). The reply is framed:
   FEDSTATS|BEGIN|<reqid>, one F|<escaped Health summary line> per
   origin, FEDSTATS|END|<reqid>|<count>. With live eligible neighbors
   and ttl > 0 the reply is deferred: decremented-ttl sub-pulls (fresh
   sub-request id) fan out first and the frames merge as they return —
   or the deadline passes and the partial view answers. <reqid> is
   caller-chosen; "BEGIN"/"END" are reserved. *)

let parse_seen = function
  | [] -> []
  | s :: _ -> String.split_on_char ',' s |> List.filter_map int_of_string_opt

let fed_reply conn ~reqid view =
  Framing.send ~enqueue:(enqueue conn) ~tag:"FEDSTATS" ~begin_args:[ reqid ]
    ~end_args:[ reqid; string_of_int (List.length view) ]
    ~line_tag:"F"
    (List.map Framing.escape (Xroute_obs.Health.encode_view view))

let handle_fedstats t conn ~reqid ~ttl ~seen =
  let self = Broker.id t.broker in
  (* Freshen the summary the pull will carry. *)
  Broker.refresh_metrics t.broker;
  Xroute_obs.Health.tick t.health ~now:(Mono.now t.clock);
  let seen = self :: seen in
  let view0 = Xroute_obs.Health.view_of [ t.health ] in
  (* Fan over every live neighbor connection — declared at startup or
     learned from an inbound HELLO|broker — so a one-sided neighbor
     declaration (which routing already tolerates) still federates the
     whole overlay. *)
  let targets =
    if ttl <= 0 then []
    else
      List.fold_left
        (fun acc c ->
          match c.endpoint with
          | Some (Rtable.Neighbor nid)
            when (not c.closed) && (not c.connecting) && (not (List.mem nid seen))
                 && not (List.mem_assoc nid acc) -> (nid, c) :: acc
          | Some _ | None -> acc)
        [] t.conns
      |> List.rev
  in
  if targets = [] then fed_reply conn ~reqid view0
  else begin
    t.fed_seq <- t.fed_seq + 1;
    let subid = Printf.sprintf "f%d.%d" self t.fed_seq in
    t.fed_pending <-
      {
        fp_reply = conn;
        fp_reqid = reqid;
        fp_subid = subid;
        fp_waiting = List.map fst targets;
        fp_view = view0;
        fp_deadline = Mono.now t.clock +. fed_timeout_ms;
      }
      :: t.fed_pending;
    (* Every sibling target lands in the forwarded seen-set too, so two
       branches of the fan-out cannot pull each other into a cycle. *)
    let seen' =
      String.concat "," (List.map string_of_int (seen @ List.map fst targets))
    in
    List.iter
      (fun (_, c) -> enqueue c (Printf.sprintf "FEDSTATS|%s|%d|%s" subid (ttl - 1) seen'))
      targets
  end

(* A neighbor's reply frame, reassembled per-connection ([fed_in]) and
   folded into whichever pending pull forwarded that sub-request id. *)

let fed_frame_begin conn subid = conn.fed_in <- Some (subid, [])

let fed_frame_line conn payload =
  match conn.fed_in with
  | Some (subid, lines) -> conn.fed_in <- Some (subid, Framing.unescape payload :: lines)
  | None -> ()

let fed_frame_end t conn subid =
  match conn.fed_in with
  | Some (id, lines) when String.equal id subid -> (
    conn.fed_in <- None;
    let nid =
      match conn.endpoint with Some (Rtable.Neighbor n) -> Some n | Some _ | None -> None
    in
    match
      (nid, List.find_opt (fun p -> String.equal p.fp_subid subid) t.fed_pending)
    with
    | Some nid, Some p ->
      (match Xroute_obs.Health.decode_view (List.rev lines) with
      | Some view -> p.fp_view <- Xroute_obs.Health.merge_views p.fp_view view
      | None ->
        Log.warn (fun m ->
            m "broker %d: malformed FEDSTATS view from neighbor %d" (Broker.id t.broker) nid));
      p.fp_waiting <- List.filter (fun id -> id <> nid) p.fp_waiting
    | _ -> ())
  | Some _ | None -> ()

(* Answer every pull whose neighbors have all reported (or vanished),
   and every pull past its deadline — with whatever view accumulated. *)
let fed_sweep t =
  if t.fed_pending <> [] then begin
    let now = Mono.now t.clock in
    let done_, waiting =
      List.partition (fun p -> p.fp_waiting = [] || now >= p.fp_deadline) t.fed_pending
    in
    t.fed_pending <- waiting;
    List.iter (fun p -> fed_reply p.fp_reply ~reqid:p.fp_reqid p.fp_view) (List.rev done_)
  end

(* Handle one routed publication, timing its stages into the span
   collector. The hop span covers [batch_t (socket readable) …
   serialize end]; its leaves tile that interval — queue (buffer wait
   behind earlier lines of the batch), parse (codec decode), match
   (Broker.handle, with the SRT/PRT/cover op deltas as meta), serialize
   (encode + enqueue) — so leaf durations sum to the hop duration
   exactly. A publication arriving without trace context is at its
   first broker: a root "pub" span is opened (reused across the paths
   of one document) and the context is minted here. Outgoing copies
   carry this hop's span id as parent, chaining the next broker's hop
   under this one. *)
let handle_publish t ~batch_t ~from pub trail ctx =
  let b = Broker.id t.broker in
  let t0 = Mono.now t.clock in
  let trace, parent, root =
    match (ctx : Message.trace_ctx option) with
    | Some c -> (c.trace, Some c.parent_span, None)
    | None ->
      let root =
        match Span.root_for t.spans ~trace:pub.Xroute_xml.Xml_paths.doc_id with
        | Some r -> r
        | None ->
          Span.start_span t.spans ~trace:pub.Xroute_xml.Xml_paths.doc_id ~name:"pub"
            ~broker:(-1) ~at:batch_t ()
      in
      (pub.Xroute_xml.Xml_paths.doc_id, Some root.Span.id, Some root)
  in
  let hop = Span.start_span t.spans ?parent ~trace ~name:"hop" ~broker:b ~at:batch_t () in
  let leaf name start stop ?meta () =
    if stop -. start > 0.0 then
      ignore (Span.record t.spans ~parent:hop.Span.id ?meta ~trace ~name ~broker:b ~start ~stop ())
  in
  leaf "queue" batch_t t0 ();
  let t_dec = Mono.now t.clock in
  leaf "parse" t0 t_dec ();
  let s0, m0, c0 = Broker.stage_ops t.broker in
  let outs = Broker.handle t.broker ~from (Message.Publish { pub; trail; ctx }) in
  let t_match = Mono.now t.clock in
  let s1, m1, c1 = Broker.stage_ops t.broker in
  leaf "match" t_dec t_match
    ~meta:
      [
        ("srt_ops", string_of_int (s1 - s0));
        ("prt_ops", string_of_int (m1 - m0));
        ("cover_ops", string_of_int (c1 - c0));
      ]
    ();
  let ctx' = Some { Message.trace; parent_span = hop.Span.id } in
  dispatch t
    (List.map
       (fun (ep, m) ->
         match m with
         | Message.Publish p -> (ep, Message.Publish { p with ctx = ctx' })
         | m -> (ep, m))
       outs);
  let t_ser = Mono.now t.clock in
  leaf "serialize" t_match t_ser ();
  Span.finish hop ~at:t_ser;
  Option.iter (fun r -> Span.extend r ~at:t_ser) root;
  if t.telemetry then begin
    let h = t.health in
    Xroute_obs.Health.record_pub h;
    Xroute_obs.Health.record_hop_latency h (t_ser -. batch_t);
    (* Attribute the hop's latency to each egress link it fed: the
       per-link quantiles then expose which links sit behind slow hops. *)
    List.iter
      (fun (ep, _) ->
        match ep with
        | Rtable.Neighbor n -> Xroute_obs.Health.record_link_latency h ~peer:n (t_ser -. batch_t)
        | Rtable.Client _ -> ())
      outs
  end

(* Identify a connection. A peer re-connecting (or a confused one)
   can send a HELLO claiming an endpoint that already has a live
   connection; keeping both would make [conn_for] pick whichever sits
   first in the list, silently splitting that endpoint's traffic
   between two sockets. The freshest identification wins: the stale
   conn is closed (its unsent output is gone either way once the peer
   reads from the new socket). *)
let identify t conn ep =
  (match conn_for t ep with
  | Some stale when stale != conn ->
    Log.info (fun m ->
        m "broker %d: %a re-identified, closing the stale connection" (Broker.id t.broker)
          Rtable.pp_endpoint ep);
    close_conn t stale
  | Some _ | None -> ());
  conn.endpoint <- Some ep

let handle_hello t conn line kind id =
  match (kind, int_of_string_opt id) with
  | "broker", Some b -> identify t conn (Rtable.Neighbor b)
  | "client", Some c -> identify t conn (Rtable.Client c)
  | _ -> Log.warn (fun m -> m "malformed HELLO %S" line)

(* Finish one pool-matched publication on the main domain: the reorder
   buffer already restored arrival order, so routing (counters, hop
   grouping) and emission here are byte-identical to the sequential
   path. Span stages reuse the worker-measured parse/match durations,
   laid out backwards from drain time so the leaves still tile
   [batch_t, t_ser] exactly (the queue leaf absorbs the pool's
   in-flight wait, which is exactly what it measures). *)
let handle_pool_publish t ~seq:_ ~from ~batch_t outcome =
  match (outcome : Shard_pool.outcome) with
  | Shard_pool.Undecodable e ->
    Log.warn (fun m ->
        m "undecodable message from %a: %a" Rtable.pp_endpoint from Codec.pp_error e)
  | Shard_pool.Routed { pub; ctx; payloads; ops; parse_ms; match_ms } ->
    let b = Broker.id t.broker in
    let t0 = Mono.now t.clock in
    let trace, parent, root =
      match (ctx : Message.trace_ctx option) with
      | Some c -> (c.trace, Some c.parent_span, None)
      | None ->
        let root =
          match Span.root_for t.spans ~trace:pub.Xroute_xml.Xml_paths.doc_id with
          | Some r -> r
          | None ->
            Span.start_span t.spans ~trace:pub.Xroute_xml.Xml_paths.doc_id ~name:"pub"
              ~broker:(-1) ~at:batch_t ()
        in
        (pub.Xroute_xml.Xml_paths.doc_id, Some root.Span.id, Some root)
    in
    let hop = Span.start_span t.spans ?parent ~trace ~name:"hop" ~broker:b ~at:batch_t () in
    let leaf name start stop ?meta () =
      if stop -. start > 0.0 then
        ignore (Span.record t.spans ~parent:hop.Span.id ?meta ~trace ~name ~broker:b ~start ~stop ())
    in
    let t_match_end = t0 in
    let t_match_start = max batch_t (t_match_end -. match_ms) in
    let t_parse_start = max batch_t (t_match_start -. parse_ms) in
    leaf "queue" batch_t t_parse_start ();
    leaf "parse" t_parse_start t_match_start ();
    leaf "match" t_match_start t_match_end ~meta:[ ("prt_ops", string_of_int ops) ] ();
    let outs = Broker.route_publication t.broker ~from ~pub ~ctx ~payloads ~match_ops:ops in
    let ctx' = Some { Message.trace; parent_span = hop.Span.id } in
    dispatch t
      (List.map
         (fun (ep, m) ->
           match m with
           | Message.Publish p -> (ep, Message.Publish { p with ctx = ctx' })
           | m -> (ep, m))
         outs);
    let t_ser = Mono.now t.clock in
    leaf "serialize" t_match_end t_ser ();
    Span.finish hop ~at:t_ser;
    Option.iter (fun r -> Span.extend r ~at:t_ser) root;
    if t.telemetry then begin
      let h = t.health in
      Xroute_obs.Health.record_pub h;
      Xroute_obs.Health.record_hop_latency h (t_ser -. batch_t);
      List.iter
        (fun (ep, _) ->
          match ep with
          | Rtable.Neighbor n -> Xroute_obs.Health.record_link_latency h ~peer:n (t_ser -. batch_t)
          | Rtable.Client _ -> ())
        outs
    end

let pool_drain t pool =
  Shard_pool.drain pool ~publish:(fun ~seq ~from ~batch_t outcome ->
      handle_pool_publish t ~seq ~from ~batch_t outcome)

(* Pool-mode line handling. Every line gets a global arrival sequence
   number; publications are classified by root (a raw-line field scan,
   no decode) and shipped to their owner shard, everything else runs
   its state transition NOW — arrival order is exactly the order the
   sequential engine would process in — but parks its emission in the
   reorder buffer, so the bytes leaving each connection are identical
   to the sequential daemon's. HELLO stays immediate: it only sets
   connection metadata and must attribute the very next line. *)
let handle_line_pool t pool conn ~batch_t line =
  match String.split_on_char '|' line with
  | "HELLO" :: kind :: id :: _ -> handle_hello t conn line kind id
  | "M" :: _ -> (
    match conn.endpoint with
    | None -> Log.warn (fun m -> m "message before HELLO, ignoring")
    | Some from -> (
      let payload = String.sub line 2 (String.length line - 2) in
      match Shard_pool.publish_root payload with
      | Some root ->
        let seq = Shard_pool.next_seq pool in
        (* Backpressure: a full ingress ring means the owner shard is
           behind; drain finished work (freeing ring slots downstream)
           and yield until the submit lands. *)
        while not (Shard_pool.submit_publish pool ~seq ~from ~batch_t ~payload ~root) do
          pool_drain t pool;
          Unix.sleepf 0.0002
        done
      | None -> (
        let seq = Shard_pool.next_seq pool in
        match Codec.decode payload with
        | Ok msg ->
          (* Mirror actual PRT changes onto the shards before any later
             publication is submitted: the ingress rings are FIFO, so a
             publication at seq n sees exactly the subscriptions of
             lines with seq < n — the sequential engine's view. *)
          let interesting_id =
            match msg with
            | Message.Subscribe { id; _ } | Message.Unsubscribe { id } -> Some id
            | Message.Advertise _ | Message.Unadvertise _ | Message.Publish _ -> None
          in
          let before =
            match interesting_id with
            | Some id -> Broker.prt_mem t.broker id
            | None -> false
          in
          let outs = Broker.handle t.broker ~from msg in
          (match (msg, interesting_id) with
          | Message.Subscribe { id; xpe }, _ ->
            if (not before) && Broker.prt_mem t.broker id then
              Shard_pool.subscribe pool ~stamp:seq id xpe from
          | Message.Unsubscribe { id }, _ ->
            if before && not (Broker.prt_mem t.broker id) then Shard_pool.unsubscribe pool id
          | (Message.Advertise _ | Message.Unadvertise _ | Message.Publish _), _ -> ());
          Shard_pool.push_control pool ~seq (fun () -> dispatch t outs)
        | Error e ->
          Shard_pool.push_control pool ~seq (fun () ->
              Log.warn (fun m ->
                  m "undecodable message from %a: %a" Rtable.pp_endpoint from Codec.pp_error e)))))
  | "PING" :: _ ->
    let seq = Shard_pool.next_seq pool in
    Shard_pool.push_control pool ~seq (fun () -> enqueue conn "PONG")
  | "STATS" :: rest ->
    let fmt = match rest with "json" :: _ -> `Json | _ -> `Prom in
    let seq = Shard_pool.next_seq pool in
    Shard_pool.push_control pool ~seq (fun () -> send_stats t conn fmt)
  | "AUDIT" :: _ ->
    let seq = Shard_pool.next_seq pool in
    Shard_pool.push_control pool ~seq (fun () -> send_audit t conn)
  | "TRACE" :: key :: _ ->
    let seq = Shard_pool.next_seq pool in
    Shard_pool.push_control pool ~seq (fun () -> send_trace t conn key)
  | "FEDSTATS" :: "BEGIN" :: subid :: _ ->
    let seq = Shard_pool.next_seq pool in
    Shard_pool.push_control pool ~seq (fun () -> fed_frame_begin conn subid)
  | "FEDSTATS" :: "END" :: subid :: _ ->
    let seq = Shard_pool.next_seq pool in
    Shard_pool.push_control pool ~seq (fun () -> fed_frame_end t conn subid)
  | "FEDSTATS" :: reqid :: ttl :: rest ->
    let ttl = Option.value (int_of_string_opt ttl) ~default:0 in
    let seen = parse_seen rest in
    let seq = Shard_pool.next_seq pool in
    Shard_pool.push_control pool ~seq (fun () -> handle_fedstats t conn ~reqid ~ttl ~seen)
  | "F" :: _ ->
    let payload = String.sub line 2 (String.length line - 2) in
    let seq = Shard_pool.next_seq pool in
    Shard_pool.push_control pool ~seq (fun () -> fed_frame_line conn payload)
  | _ -> Log.warn (fun m -> m "unknown line %S" line)

let handle_line t conn ~batch_t line =
  match t.pool with
  | Some pool -> handle_line_pool t pool conn ~batch_t line
  | None -> (
    match String.split_on_char '|' line with
    | "HELLO" :: kind :: id :: _ -> handle_hello t conn line kind id
    | "M" :: _ -> (
      match conn.endpoint with
      | None -> Log.warn (fun m -> m "message before HELLO, ignoring")
      | Some from -> (
        let payload = String.sub line 2 (String.length line - 2) in
        match Codec.decode payload with
        | Ok (Message.Publish { pub; trail; ctx }) -> handle_publish t ~batch_t ~from pub trail ctx
        | Ok msg -> dispatch t (Broker.handle t.broker ~from msg)
        | Error e ->
          Log.warn (fun m -> m "undecodable message from %a: %a" Rtable.pp_endpoint from Codec.pp_error e)))
    | "PING" :: _ -> enqueue conn "PONG"
    | "STATS" :: rest ->
      let fmt = match rest with "json" :: _ -> `Json | _ -> `Prom in
      send_stats t conn fmt
    | "AUDIT" :: _ -> send_audit t conn
    | "TRACE" :: key :: _ -> send_trace t conn key
    | "FEDSTATS" :: "BEGIN" :: subid :: _ -> fed_frame_begin conn subid
    | "FEDSTATS" :: "END" :: subid :: _ -> fed_frame_end t conn subid
    | "FEDSTATS" :: reqid :: ttl :: rest ->
      let ttl = Option.value (int_of_string_opt ttl) ~default:0 in
      handle_fedstats t conn ~reqid ~ttl ~seen:(parse_seen rest)
    | "F" :: _ -> fed_frame_line conn (String.sub line 2 (String.length line - 2))
    | _ -> Log.warn (fun m -> m "unknown line %S" line))

(* Extract complete lines from the connection buffer. [batch_t] is when
   the socket became readable: lines later in the batch were queued
   behind earlier ones, which the per-publication "queue" stage span
   measures. *)
let drain_lines t conn ~batch_t =
  let rec go () =
    if not conn.closed then
      match Linebuf.next_line conn.inbuf with
      | Some line ->
        if line <> "" then handle_line t conn ~batch_t line;
        go ()
      | None -> ()
  in
  go ()

(* ---------------- dialing ---------------- *)

(* Resolve a neighbor host. Name resolution can block for seconds on a
   broken resolver, so successful lookups are memoized: each name stalls
   the loop at most once, and the common numeric-address case never
   touches the resolver at all. *)
let resolve t host =
  match Hashtbl.find_opt t.resolved host with
  | Some addr -> Some addr
  | None -> (
    let addr =
      match Unix.inet_addr_of_string host with
      | addr -> Some addr
      | exception Failure _ -> (
        match (Unix.gethostbyname host).Unix.h_addr_list with
        | [||] -> None
        | addrs -> Some addrs.(0)
        | exception Not_found -> None)
    in
    match addr with
    | Some a ->
      Hashtbl.replace t.resolved host a;
      Some a
    | None -> None)

(* Connect to lower-id neighbors that are not connected yet. The socket
   goes non-blocking BEFORE connect: a slow or black-holed peer must not
   stall the event loop (a blocking connect can hang for the full TCP
   timeout — minutes — during which every established connection
   starves). EINPROGRESS parks the conn with [connecting] set; [step]
   finishes the handshake when the socket reports writability. The conn
   carries its endpoint from the start so [conn_for] suppresses duplicate
   dials on the next 50ms tick, but HELLO is only enqueued once the
   connect actually completes. *)
let dial_missing t =
  let now = Unix.gettimeofday () in
  if now -. t.last_dial >= 0.05 then begin
    t.last_dial <- now;
    List.iter
      (fun (nid, (host, port)) ->
        if nid < Broker.id t.broker && conn_for t (Rtable.Neighbor nid) = None then
          match resolve t host with
          | None -> () (* retry on the next tick *)
          | Some addr -> (
            match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
            | exception Unix.Unix_error _ -> ()
            | fd -> (
              Unix.set_nonblock fd;
              match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
              | () ->
                (* Loopback can complete synchronously. *)
                let conn = conn_of fd in
                conn.endpoint <- Some (Rtable.Neighbor nid);
                enqueue conn (Printf.sprintf "HELLO|broker|%d" (Broker.id t.broker));
                t.conns <- conn :: t.conns;
                Log.info (fun m -> m "broker %d connected to neighbor %d" (Broker.id t.broker) nid)
              | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) ->
                let conn = conn_of fd in
                conn.connecting <- true;
                conn.endpoint <- Some (Rtable.Neighbor nid);
                t.conns <- conn :: t.conns
              | exception Unix.Unix_error _ -> (
                try Unix.close fd with Unix.Unix_error _ -> ()))))
      t.neighbors
  end

(* ---------------- the event loop ---------------- *)

(* One iteration: accept, read, process, write. [timeout] bounds the
   select wait in seconds. *)
(* Write as much buffered output as the socket accepts. *)
let flush_out t conn =
  if Buffer.length conn.outbuf > 0 then begin
    Queue.add (Buffer.contents conn.outbuf) conn.outq;
    Buffer.clear conn.outbuf
  end;
  let continue = ref true in
  while !continue && not (Queue.is_empty conn.outq) do
    let chunk = Queue.peek conn.outq in
    let remaining = min t.max_write_chunk (String.length chunk - conn.out_off) in
    match Unix.write_substring conn.fd chunk conn.out_off remaining with
    | n ->
      conn.out_off <- conn.out_off + n;
      if conn.out_off = String.length chunk then begin
        ignore (Queue.pop conn.outq);
        conn.out_off <- 0
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> () (* interrupted, not failed: retry *)
    | exception Unix.Unix_error _ ->
      close_conn t conn;
      continue := false
  done

(* Periodic registry snapshot into the timeseries ring (first step
   takes the baseline sample). *)
let maybe_snapshot t =
  let at = Mono.now t.clock in
  if at -. t.last_snapshot >= t.snapshot_period then begin
    t.last_snapshot <- at;
    Broker.refresh_metrics t.broker;
    refresh_pool_gauges t;
    Timeseries.snapshot t.timeseries ~at;
    if t.telemetry then begin
      (* Health gauges sampled per snapshot: ingress queue depth (pool
         in-flight) and egress backlog (bytes buffered across conns). *)
      let depth =
        match t.pool with Some pool -> Shard_pool.in_flight pool | None -> 0
      in
      Xroute_obs.Health.record_queue_depth t.health (float_of_int depth);
      let backlog =
        List.fold_left
          (fun acc c ->
            acc + Buffer.length c.outbuf
            + Queue.fold (fun a s -> a + String.length s) (-c.out_off) c.outq)
          0 t.conns
      in
      Xroute_obs.Health.record_backlog t.health (float_of_int backlog);
      Xroute_obs.Health.tick t.health ~now:at
    end
  end

(* Accept everything the backlog holds, not just one connection per
   tick: under a connection burst, one-accept-per-select caps the accept
   rate at 1/timeout per second and the backlog overflows. *)
let accept_burst t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | fd, _ -> t.conns <- conn_of fd :: t.conns
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
  done

(* Read one connection until EAGAIN (bounded): a peer writing faster
   than one 4KB read per select tick would otherwise accumulate
   unboundedly in the kernel buffer. The bound keeps one loud peer from
   monopolizing the tick. Line handling can close [conn] (fatal protocol
   errors) or close OTHER conns (duplicate HELLO), hence the re-check on
   every iteration. *)
let read_conn t conn =
  let size = Bytes.length t.read_buf in
  let batch_t = Mono.now t.clock in
  let rounds = ref 8 in
  let continue = ref true in
  while !continue && !rounds > 0 && not conn.closed do
    decr rounds;
    match Unix.read conn.fd t.read_buf 0 size with
    | 0 ->
      close_conn t conn;
      continue := false
    | n ->
      Linebuf.add_subbytes conn.inbuf t.read_buf 0 n;
      drain_lines t conn ~batch_t;
      if n < size then continue := false
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
      close_conn t conn;
      continue := false
  done

(* A non-blocking connect resolved: writability means the three-way
   handshake finished (or failed — SO_ERROR disambiguates). *)
let finish_connect t conn =
  match Unix.getsockopt_error conn.fd with
  | None ->
    conn.connecting <- false;
    enqueue conn (Printf.sprintf "HELLO|broker|%d" (Broker.id t.broker));
    (match conn.endpoint with
    | Some (Rtable.Neighbor nid) ->
      Log.info (fun m -> m "broker %d connected to neighbor %d" (Broker.id t.broker) nid)
    | Some _ | None -> ())
  | Some _ -> close_conn t conn (* refused/unreachable: redial next tick *)

let step ?(timeout = 0.05) t =
  dial_missing t;
  maybe_snapshot t;
  fed_sweep t;
  (* Ingress throttle: past the watermark, leave peer sockets out of the
     read set and let TCP push the pressure back to the senders. *)
  let can_read =
    match t.pool with Some pool -> Shard_pool.in_flight pool < read_watermark | None -> true
  in
  let readable =
    let conn_fds =
      if can_read then
        List.filter_map (fun c -> if c.connecting then None else Some c.fd) t.conns
      else []
    in
    let base = t.listen_fd :: conn_fds in
    match t.pool with Some pool -> Shard_pool.wake_fd pool :: base | None -> base
  in
  let writable =
    List.filter_map
      (fun c -> if c.connecting || pending_out c then Some c.fd else None)
      t.conns
  in
  (match Unix.select readable writable [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | rs, ws, _ ->
    if List.memq t.listen_fd rs then accept_burst t;
    (* read — iterate the live list and re-check [closed] on every
       conn: handling a line can close other connections mid-tick
       (duplicate HELLO, fatal dispatch errors), and reading from an
       already-closed fd would hit whatever unrelated descriptor the
       kernel has since handed that number to. *)
    List.iter
      (fun conn ->
        if (not conn.closed) && (not conn.connecting) && List.memq conn.fd rs then
          read_conn t conn)
      t.conns;
    (* drain the pool: run control thunks and finish routed publications
       in arrival order *)
    (match t.pool with
    | Some pool ->
      if List.memq (Shard_pool.wake_fd pool) rs then Shard_pool.drain_wake pool;
      pool_drain t pool
    | None -> ());
    (* write *)
    List.iter
      (fun conn ->
        if (not conn.closed) && List.memq conn.fd ws then
          if conn.connecting then finish_connect t conn
          else if pending_out conn then flush_out t conn)
      t.conns)

(* Run until [request_stop] (or forever). *)
let run ?(timeout = 0.05) t =
  while not t.stop_requested do
    step ~timeout t
  done;
  (* Let in-flight publications finish routing (bounded) before the
     connections are torn down, so a stop request does not silently
     drop work already read off the sockets. *)
  (match t.pool with
  | None -> ()
  | Some pool ->
    let deadline = Unix.gettimeofday () +. 2.0 in
    while Shard_pool.in_flight pool > 0 && Unix.gettimeofday () < deadline do
      pool_drain t pool;
      Unix.sleepf 0.0002
    done;
    pool_drain t pool;
    (* flush what the drain enqueued *)
    List.iter (fun c -> if (not c.closed) && pending_out c then flush_out t c) t.conns;
    Shard_pool.stop pool);
  List.iter (fun c -> close_conn t c) t.conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())
