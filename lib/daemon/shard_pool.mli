(** Sharded publication-matching pool over OCaml 5 domains.

    The PRT is partitioned by advertisement-root symbol (the
    [Rtable.Srt.sub_root] discriminator): one [Rtable.Prt.Shard] per
    worker domain, anchored subscriptions on their owner shard,
    unanchored ones replicated everywhere — so each publication is
    matched on exactly one shard (its root's owner) against exactly the
    subscriptions that can match it. Results are merged through a
    seq-keyed reorder buffer, making the emitted outputs byte-identical
    to the sequential engine (see the implementation header for the
    full determinism argument).

    Threading contract: every function except the worker internals must
    be called from the single owning (daemon main) domain. *)

open Xroute_core

type t

(** What a worker hands back for one publication: the decoded
    publication with its stamp-ordered matching payloads (plus the
    automaton entries examined and worker-side stage timings), or the
    decode error the sequential path would have logged. *)
type outcome =
  | Routed of {
      pub : Xroute_xml.Xml_paths.publication;
      ctx : Message.trace_ctx option;
      payloads : Rtable.Prt.payload list;
      ops : int;
      parse_ms : float;
      match_ms : float;
    }
  | Undecodable of Codec.error

val create : ?ingress_capacity:int -> domains:int -> unit -> t
(** Spawn [domains] worker domains (>= 1). [ingress_capacity] (default
    1024) sizes each worker's ingress ring; tests shrink it to drive
    the backpressure path deterministically. *)

val stop : t -> unit
(** Signal and join every worker; idempotent. *)

val domains : t -> int

val next_seq : t -> int
(** Allocate the next global arrival sequence number. Every allocated
    seq must be fed to exactly one of {!push_control} /
    {!submit_publish}, or {!drain} stalls at the hole. *)

val push_control : t -> seq:int -> (unit -> unit) -> unit
(** Park a control line's emission thunk at [seq]; it runs inside
    {!drain} once every lower seq has been emitted. The line's state
    transition (e.g. [Broker.handle]) must already have run at arrival
    time. *)

val subscribe :
  t -> stamp:int -> Message.sub_id -> Xroute_xpath.Xpe.t -> Rtable.endpoint -> unit
(** Mirror a PRT insertion onto the owner shard (anchored) or all
    shards (unanchored). [stamp] is the subscribing line's seq. Blocks
    (briefly) if an ingress ring is full — shard updates are never
    dropped. *)

val unsubscribe : t -> Message.sub_id -> unit
(** Mirror a PRT removal (broadcast; removal is a no-op where the id is
    absent). *)

val submit_publish :
  t -> seq:int -> from:Rtable.endpoint -> batch_t:float -> payload:string -> root:string -> bool
(** Hand a raw publication line to its owner shard. [false] = the
    ingress ring is full and nothing was enqueued (back off: {!drain},
    then retry with the same [seq]). *)

val drain :
  t ->
  publish:(seq:int -> from:Rtable.endpoint -> batch_t:float -> outcome -> unit) ->
  unit
(** Emit everything ready in seq order: control thunks run here,
    finished publications go to [publish] (which finishes routing,
    spans and dispatch on the main domain). *)

val publish_root : string -> string option
(** Root element of a raw publication wire line ("1|P|..."), or [None]
    when the line is not a well-formed publication — the caller then
    uses the sequential control path, whose full decode reproduces the
    sequential error handling. *)

val owner : t -> string -> int
(** Owner shard of a root element name (hash of the name, not of the
    interned id — stable across interning orders). *)

val in_flight : t -> int
(** Publications submitted but not yet emitted — the daemon's read
    watermark input. *)

val pubs_routed : t -> int
(** Publications fully routed through the pool (the global gauge the
    per-shard counters must sum to). *)

val wake_fd : t -> Unix.file_descr
(** Self-pipe read end: becomes readable when workers finish results;
    add to the [select] read set and call {!drain_wake} when it fires. *)

val drain_wake : t -> unit

val quiesce : t -> unit
(** Wait until every worker has processed everything pushed at it. Call
    with [in_flight t = 0]; afterwards shard state may be read from the
    owning domain without a race. *)

val shard : t -> int -> Rtable.Prt.Shard.t

val view : t -> subs:(Message.sub_id * Xroute_xpath.Xpe.t) list -> Xroute_check.Check.shard_view
(** Snapshot for [Check.audit_shards]; [subs] is the authoritative PRT
    content. Call at quiescence. *)

val corrupt_for_test : t -> unit
(** Must-fail mutation hook: silently break shard 0's partition. *)
