(* Blocking TCP client for the broker daemon: connects to a broker,
   identifies itself, and exchanges codec-framed messages. Used by the
   command-line tools, the examples and the end-to-end network test.

   The client keeps a session ledger (advertisements and subscriptions
   with their ids) and survives a brokerd restart: when a send fails or
   the connection closes, it redials with capped exponential backoff,
   re-identifies, and replays the ledger with the original ids — the
   broker deduplicates, so replay against a surviving broker is a
   no-op and against a fresh one rebuilds the session. Publications
   are not journaled: one in flight during the failure can be lost, so
   delivery during a restart window is at-most-once unless the caller
   retries. *)

open Xroute_core

type t = {
  mutable fd : Unix.file_descr;
  client_id : int;
  host : string;
  port : int;
  mutable reconnect_wait : float; (* total redial budget per failure, seconds *)
  mutable next_seq : int;
  inbuf : Linebuf.t;
  mutable advs : (Message.sub_id * Xroute_xpath.Adv.t) list; (* newest first *)
  mutable subs : (Message.sub_id * Xroute_xpath.Xpe.t) list; (* newest first *)
  mutable reconnects : int;
}

exception Unavailable of string

let reconnects t = t.reconnects
let set_reconnect_wait t s = t.reconnect_wait <- s

let write_all fd data =
  let rec go off =
    if off < String.length data then begin
      let n = Unix.write_substring fd data off (String.length data - off) in
      go (off + n)
    end
  in
  go 0

let dial ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let hello t fd = write_all fd (Printf.sprintf "HELLO|client|%d\n" t.client_id)

(* Redial with capped exponential backoff until [reconnect_wait] is
   spent — raising [Unavailable] (never a raw [Unix_error]) when the
   budget runs out — then replay the session: HELLO, advertisements,
   then subscriptions, in registration order and with their original
   ids. *)
let reconnect t =
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  (* Drop any partial line from the dead connection: its tail is gone,
     and gluing it to the new connection's bytes would forge a line. *)
  Linebuf.clear t.inbuf;
  let deadline = Unix.gettimeofday () +. t.reconnect_wait in
  let rec attempt backoff =
    match dial ~host:t.host ~port:t.port with
    | fd -> fd
    | exception Unix.Unix_error (e, _, _) ->
      if Unix.gettimeofday () +. backoff < deadline then begin
        Unix.sleepf backoff;
        attempt (Float.min 1.0 (backoff *. 2.0))
      end
      else
        raise
          (Unavailable
             (Printf.sprintf "broker %s:%d unreachable (%s) after %.1fs of redialing" t.host
                t.port (Unix.error_message e) t.reconnect_wait))
  in
  let fd = attempt 0.05 in
  t.fd <- fd;
  t.reconnects <- t.reconnects + 1;
  hello t fd;
  List.iter
    (fun (id, adv) -> write_all fd ("M|" ^ Codec.encode (Message.Advertise { id; adv }) ^ "\n"))
    (List.rev t.advs);
  List.iter
    (fun (id, xpe) -> write_all fd ("M|" ^ Codec.encode (Message.Subscribe { id; xpe }) ^ "\n"))
    (List.rev t.subs)

let send_failure = function
  | Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNREFUSED | Unix.ENOTCONN | Unix.EBADF -> true
  | _ -> false

let send_line t line =
  let data = line ^ "\n" in
  try write_all t.fd data
  with Unix.Unix_error (e, _, _) when send_failure e -> (
    reconnect t;
    (* The freshly-dialed socket can still die under us (broker accepted
       then crashed again): surface that cleanly too, not as a raw
       [Unix_error]. *)
    try write_all t.fd data
    with Unix.Unix_error (e, _, _) when send_failure e ->
      raise
        (Unavailable
           (Printf.sprintf "broker %s:%d dropped the fresh connection (%s)" t.host t.port
              (Unix.error_message e))))

let connect ~client_id ~host ~port =
  (* Failed writes must raise EPIPE, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = dial ~host ~port in
  let t =
    {
      fd;
      client_id;
      host;
      port;
      reconnect_wait = 8.0;
      next_seq = 0;
      inbuf = Linebuf.create ~initial:256 ();
      advs = [];
      subs = [];
      reconnects = 0;
    }
  in
  hello t fd;
  t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let fresh_id t =
  t.next_seq <- t.next_seq + 1;
  { Message.origin = t.client_id; seq = t.next_seq }

let send t msg = send_line t ("M|" ^ Codec.encode msg)

let advertise t adv =
  let id = fresh_id t in
  t.advs <- (id, adv) :: t.advs;
  send t (Message.Advertise { id; adv });
  id

let subscribe t xpe =
  let id = fresh_id t in
  t.subs <- (id, xpe) :: t.subs;
  send t (Message.Subscribe { id; xpe });
  id

let unsubscribe t id =
  t.subs <- List.filter (fun (i, _) -> Message.compare_sub_id i id <> 0) t.subs;
  send t (Message.Unsubscribe { id })

let unadvertise t id =
  t.advs <- List.filter (fun (i, _) -> Message.compare_sub_id i id <> 0) t.advs;
  send t (Message.Unadvertise { id })

(* Publish a document: decomposed at the client edge, as in the paper. *)
let publish_doc t ~doc_id root =
  let pubs = Xroute_xml.Xml_paths.decompose ~doc_id root in
  List.iter (fun pub -> send t (Message.Publish { pub; trail = []; ctx = None })) pubs;
  List.length pubs

(* Next raw protocol line, waiting until [deadline]; [None] on timeout.
   A closed or reset connection triggers the backoff reconnect (which
   replays the session) and the wait continues; [None] if redialing
   exhausts its budget too. *)
let next_line t ~deadline =
  let buf = Bytes.create 4096 in
  let rec go () =
    match Linebuf.next_line t.inbuf with
    | Some line -> Some line
    | None ->
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then None
      else begin
        match Unix.select [ t.fd ] [] [] remaining with
        | [], _, _ -> None
        | _ -> (
          match Unix.read t.fd buf 0 4096 with
          | 0 -> recover ()
          | n ->
            Linebuf.add_subbytes t.inbuf buf 0 n;
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go () (* interrupted: retry *)
          | exception
              Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.ETIMEDOUT), _, _) ->
            (* Peer reset, half-close torn down under us, or the TCP
               keepalive/retransmit timer gave up: all mean the session
               is dead and replayable — same treatment as EOF. *)
            recover ())
      end
  and recover () = match reconnect t with () -> go () | exception Unavailable _ -> None in
  go ()

(* Receive the next message, waiting up to [timeout] seconds; [None] on
   timeout. *)
let recv ?(timeout = 1.0) t =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match next_line t ~deadline with
    | None -> None
    | Some line -> (
      match String.split_on_char '|' line with
      | "M" :: _ -> (
        match Codec.decode (String.sub line 2 (String.length line - 2)) with
        | Ok msg -> Some msg
        | Error _ -> go ())
      | _ -> go () (* control line; skip *))
  in
  go ()

(* Request the broker's metrics exposition (STATS|); the framed reply
   (STATS|BEGIN, S| lines, STATS|END) is reassembled into one string.
   Routed messages arriving while the reply streams are discarded. *)
let stats ?(timeout = 2.0) ?(format = `Prom) t =
  send_line t ("STATS|" ^ match format with `Json -> "json" | `Prom -> "prom");
  let deadline = Unix.gettimeofday () +. timeout in
  let buf = Buffer.create 1024 in
  let rec go () =
    match next_line t ~deadline with
    | None -> None
    | Some line -> (
      match String.split_on_char '|' line with
      | "STATS" :: "END" :: _ -> Some (Buffer.contents buf)
      | "S" :: _ ->
        Buffer.add_string buf (Framing.unescape (String.sub line 2 (String.length line - 2)));
        Buffer.add_char buf '\n';
        go ()
      | _ -> go () (* BEGIN frame or unrelated traffic *))
  in
  go ()

(* Request the broker's routing-state audit (AUDIT|); the framed reply
   (AUDIT|BEGIN, A| lines, AUDIT|END|e|w) is reassembled into finding
   tuples plus the severity totals. *)
let audit ?(timeout = 2.0) t =
  send_line t "AUDIT";
  let deadline = Unix.gettimeofday () +. timeout in
  let findings = ref [] in
  let rec go () =
    match next_line t ~deadline with
    | None -> None
    | Some line -> (
      match String.split_on_char '|' line with
      | "AUDIT" :: "END" :: rest ->
        let n s = Option.value (int_of_string_opt s) ~default:0 in
        let errors, warnings =
          match rest with e :: w :: _ -> (n e, n w) | _ -> (0, 0)
        in
        Some (errors, warnings, List.rev !findings)
      | "A" :: sev :: code :: subject :: rest ->
        (* Fields are Framing-escaped, so [rest] is a single element in
           practice; the concat keeps older daemons' raw witnesses
           readable. *)
        let u = Framing.unescape in
        findings := (u sev, u code, u subject, u (String.concat "|" rest)) :: !findings;
        go ()
      | _ -> go () (* BEGIN frame or unrelated traffic *))
  in
  go ()

(* Request the retained spans of one trace (TRACE|<id>); the framed
   reply (TRACE|BEGIN, T| span wire lines, TRACE|END|<count>) is decoded
   via [Span.of_wire_line]. Merge the lists from several daemons to
   reassemble a cross-broker trace. *)
let trace ?(timeout = 2.0) t key =
  send_line t (Printf.sprintf "TRACE|%d" key);
  let deadline = Unix.gettimeofday () +. timeout in
  let spans = ref [] in
  let rec go () =
    match next_line t ~deadline with
    | None -> None
    | Some line -> (
      match String.split_on_char '|' line with
      | "TRACE" :: "END" :: _ -> Some (List.rev !spans)
      | "T" :: _ -> (
        let payload = String.sub line 2 (String.length line - 2) in
        (match Xroute_obs.Span.of_wire_line payload with
        | Some sp -> spans := sp :: !spans
        | None -> ());
        go ())
      | _ -> go () (* BEGIN frame or unrelated traffic *))
  in
  go ()

(* Request the federated overlay health view (FEDSTATS|<reqid>|<ttl>|):
   the framed reply (FEDSTATS|BEGIN|<reqid>, F| summary lines,
   FEDSTATS|END|<reqid>|<count>) is decoded into a Health view. The
   broker fans the pull out to its neighbors hop-bounded by [ttl]. *)
let fedstats ?(timeout = 5.0) ?(ttl = 8) t =
  t.next_seq <- t.next_seq + 1;
  let reqid = Printf.sprintf "c%d.%d" t.client_id t.next_seq in
  send_line t (Printf.sprintf "FEDSTATS|%s|%d|" reqid ttl);
  let deadline = Unix.gettimeofday () +. timeout in
  let lines = ref [] in
  let rec go () =
    match next_line t ~deadline with
    | None -> None
    | Some line -> (
      match String.split_on_char '|' line with
      | "FEDSTATS" :: "END" :: rid :: _ when String.equal rid reqid ->
        Xroute_obs.Health.decode_view (List.rev !lines)
      | "F" :: _ ->
        lines := Framing.unescape (String.sub line 2 (String.length line - 2)) :: !lines;
        go ()
      | _ -> go () (* BEGIN frame or unrelated traffic *))
  in
  go ()

(* Collect distinct delivered doc ids until [timeout] seconds pass
   without a new message. *)
let drain_deliveries ?(timeout = 0.5) t =
  let docs = Hashtbl.create 8 in
  let rec go () =
    match recv ~timeout t with
    | Some (Message.Publish { pub; _ }) ->
      Hashtbl.replace docs pub.doc_id ();
      go ()
    | Some _ -> go ()
    | None -> ()
  in
  go ();
  List.sort compare (Hashtbl.fold (fun d () acc -> d :: acc) docs [])
