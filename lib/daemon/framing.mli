(** Framed multi-line replies for the daemon's line protocol.

    Several wire commands ([STATS|], [AUDIT|], [TRACE|]) answer with
    more than one line; each frames its reply the same way:

    {v TAG|BEGIN[|arg|...]
       <line-tag>|<payload>      (repeated)
       TAG|END[|arg|...] v}

    so a client can interleave the reply with routed traffic and knows
    exactly when it ends. {!send} emits one such frame; {!escape} /
    {!unescape} are the reversible field encoding ([%XX] for [%], [|],
    newlines) callers use to keep arbitrary payload text from breaking
    the line protocol — unlike a lossy sanitizer, the client recovers
    the original bytes. *)

(** Percent-encode the characters that would break a protocol line:
    [%], [|], [\n], [\r]. Identity on already-clean strings. *)
val escape : string -> string

(** Inverse of {!escape}; total — malformed escapes pass through
    verbatim. *)
val unescape : string -> string

(** [send ~enqueue ~tag ~line_tag lines] enqueues
    [TAG|BEGIN[|begin_args]], one [line_tag|line] per element, then
    [TAG|END[|end_args]]. Payload lines must already be line-safe
    (pre-escaped by the caller — the helper cannot guess which [|]s are
    field separators). *)
val send :
  enqueue:(string -> unit) ->
  tag:string ->
  ?begin_args:string list ->
  ?end_args:string list ->
  line_tag:string ->
  string list ->
  unit
