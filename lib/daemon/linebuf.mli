(** Incremental '\n'-framed line buffer with an amortized O(1)-per-byte
    scan: bytes are appended once, scanned once (the newline search
    resumes where it stopped), and copied out once per line — replacing
    the O(n²) [Buffer.contents] re-scans in the daemon's [drain_lines]
    and the client's [next_line]. *)

type t

val create : ?initial:int -> unit -> t

val add_subbytes : t -> Bytes.t -> int -> int -> unit
(** [add_subbytes t src pos n] appends [n] bytes of [src] at [pos]. *)

val add_string : t -> string -> unit

val next_line : t -> string option
(** Next complete line, without its terminating ['\n']; [None] when no
    full line is buffered yet. *)

val length : t -> int
(** Unconsumed bytes currently buffered. *)

val clear : t -> unit
(** Drop all buffered bytes (e.g. on reconnect). *)
