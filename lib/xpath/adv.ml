(* Advertisements (Sec. 3.1 of the paper).

   An advertisement is a system-internal, absolute XPath-like expression
   without [//], whose steps are element names or wildcards, and which may
   contain recursive patterns [(...)]+ derived from recursive DTDs:

   - non-recursive:       /t1/t2/.../tn
   - simple-recursive:    a1 (a2)+ a3
   - series-recursive:    a1 (a2)+ a3 (a4)+ a5
   - embedded-recursive:  a1 (a2 (a3)+ a4)+ a5

   where each ak is a (possibly empty) literal segment. An advertisement
   matches a publication when the pattern matches the whole path, each [+]
   group repeated one or more times. *)

type symbol = Xpe.nodetest

type part =
  | Lit of symbol array  (* a fixed-length run of names / wildcards *)
  | Group of part list  (* (...)+ : one or more repetitions *)

type t = { parts : part list }

type shape = Non_recursive | Simple_recursive | Series_recursive | Embedded_recursive

let make parts =
  let rec normalize parts =
    List.concat_map
      (function
        | Lit a when Array.length a = 0 -> []
        | Lit a -> [ Lit a ]
        | Group inner -> (
          match normalize inner with
          | [] -> []
          | inner -> [ Group inner ]))
      parts
  in
  let rec fuse = function
    | Lit a :: Lit b :: rest -> fuse (Lit (Array.append a b) :: rest)
    | part :: rest -> part :: fuse rest
    | [] -> []
  in
  let parts = fuse (normalize parts) in
  if parts = [] then invalid_arg "Adv.make: empty advertisement";
  { parts }

let parts t = t.parts

(* Non-recursive advertisement from names; "*" becomes the wildcard. *)
let of_names names =
  let to_sym = Xpe.test_of_string in
  make [ Lit (Array.of_list (List.map to_sym names)) ]

let is_group = function Group _ -> true | Lit _ -> false

let is_recursive t = List.exists is_group t.parts

let shape t =
  let rec contains_group = function
    | Lit _ -> false
    | Group inner -> List.exists (fun p -> is_group p || contains_group p) inner
  in
  let top_groups = List.filter is_group t.parts in
  match top_groups with
  | [] -> Non_recursive
  | groups when List.exists contains_group groups -> Embedded_recursive
  | [ _ ] -> Simple_recursive
  | _ -> Series_recursive

(* Minimum path length matched: every group counted at one repetition. *)
let rec part_min_length = function
  | Lit a -> Array.length a
  | Group inner -> List.fold_left (fun acc p -> acc + part_min_length p) 0 inner

let min_length t = List.fold_left (fun acc p -> acc + part_min_length p) 0 t.parts

(* Length of a non-recursive advertisement. *)
let length t =
  if is_recursive t then invalid_arg "Adv.length: recursive advertisement";
  min_length t

let symbol_to_string = Xpe.test_to_string

let to_string t =
  let buf = Buffer.create 32 in
  let rec add_part = function
    | Lit a -> Array.iter (fun s -> Buffer.add_char buf '/'; Buffer.add_string buf (symbol_to_string s)) a
    | Group inner ->
      Buffer.add_char buf '(';
      List.iter add_part inner;
      Buffer.add_string buf ")+"
  in
  List.iter add_part t.parts;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

let rec compare_part a b =
  match (a, b) with
  | Lit x, Lit y ->
    let n = compare (Array.length x) (Array.length y) in
    if n <> 0 then n
    else
      let rec cmp i =
        if i >= Array.length x then 0
        else
          match Xpe.compare_nodetest x.(i) y.(i) with 0 -> cmp (i + 1) | c -> c
      in
      cmp 0
  | Lit _, Group _ -> -1
  | Group _, Lit _ -> 1
  | Group x, Group y -> List.compare compare_part x y

let compare a b = List.compare compare_part a.parts b.parts

let equal a b = compare a b = 0

let hash t = Hashtbl.hash (to_string t)

(* The literal steps of a non-recursive advertisement. *)
let to_symbols t =
  match t.parts with
  | [ Lit a ] -> a
  | _ -> invalid_arg "Adv.to_symbols: recursive advertisement"

exception Expansion_limit of { cap : int; count : int }

(* Number of unrollings [expand ~max_reps] would produce, computed from
   the structure alone with saturating arithmetic — so a cap can be
   enforced before any exponential list is materialized. A literal
   contributes one choice; a group contributes
   sum over k in 1..max_reps of (choices of its body)^k. *)
let count_expansions ~max_reps t =
  let sat_add a b = if a > max_int - b then max_int else a + b in
  let sat_mul a b =
    if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b
  in
  let rec count_parts parts =
    List.fold_left (fun acc p -> sat_mul acc (count_part p)) 1 parts
  and count_part = function
    | Lit _ -> 1
    | Group inner ->
      let body = count_parts inner in
      let total = ref 0 in
      let power = ref 1 in
      for _ = 1 to max_reps do
        power := sat_mul !power body;
        total := sat_add !total !power
      done;
      !total
  in
  count_parts t.parts

(* Unroll each group between 1 and [max_reps] times, yielding the matched
   fixed paths as symbol arrays. Used by the brute-force oracle and the
   imperfect-degree computation; exponential, so callers keep
   [max_reps] small and guard with [?max_paths].
   @raise Expansion_limit before materializing anything when the
   predicted unrolling count exceeds [max_paths]. *)
let expand ?max_paths ~max_reps t =
  if max_reps < 1 then invalid_arg "Adv.expand: max_reps must be >= 1";
  (match max_paths with
  | Some cap ->
    let count = count_expansions ~max_reps t in
    if count > cap then raise (Expansion_limit { cap; count })
  | None -> ());
  let rec expand_parts parts =
    match parts with
    | [] -> [ [] ]
    | Lit a :: rest ->
      let tails = expand_parts rest in
      List.map (fun tail -> Array.to_list a :: tail) tails
    | Group inner :: rest ->
      let bodies = expand_parts inner in
      let tails = expand_parts rest in
      let rec reps k acc =
        if k > max_reps then acc
        else begin
          (* all concatenations of k bodies *)
          let rec combine k =
            if k = 0 then [ [] ]
            else
              let shorter = combine (k - 1) in
              List.concat_map (fun body -> List.map (fun rest -> body @ rest) shorter) bodies
          in
          reps (k + 1) (acc @ combine k)
        end
      in
      let repeated = reps 1 [] in
      List.concat_map (fun rep -> List.map (fun tail -> rep @ tail) tails) repeated
  in
  expand_parts t.parts
  |> List.map (fun segments -> Array.of_list (List.concat segments))

(* Depth-first enumeration of the unrollings, one callback per complete
   path; never materializes more than the current path, so it can stop
   early. [acc] carries the symbol arrays emitted so far, reversed. *)
let iter_expansions ~max_reps t f =
  let rec go parts acc k =
    match parts with
    | [] -> k acc
    | Lit a :: rest -> go rest (a :: acc) k
    | Group inner :: rest ->
      let rec rep r acc =
        if r <= max_reps then
          go inner acc (fun acc' ->
              go rest acc' k;
              rep (r + 1) acc')
      in
      rep 1 acc
  in
  go t.parts [] (fun acc -> f (Array.concat (List.rev acc)))

(* Truncating variant of the cap: at most [max_paths] unrollings plus a
   flag saying whether anything was cut. Within the cap the result (and
   its order) is exactly [expand]'s; a truncated prefix comes from the
   depth-first enumeration instead. *)
let expand_capped ~max_paths ~max_reps t =
  if max_reps < 1 then invalid_arg "Adv.expand_capped: max_reps must be >= 1";
  if max_paths < 0 then invalid_arg "Adv.expand_capped: max_paths must be >= 0";
  if count_expansions ~max_reps t <= max_paths then (expand ~max_reps t, false)
  else begin
    let acc = ref [] in
    let n = ref 0 in
    (try
       iter_expansions ~max_reps t (fun path ->
           if !n >= max_paths then raise Exit;
           acc := path :: !acc;
           incr n)
     with Exit -> ());
    (List.rev !acc, true)
  end

(* Symbol-level overlap: do the two node tests admit a common element? *)
let symbols_overlap a b =
  match (a, b) with
  | Xpe.Star, _ | _, Xpe.Star -> true
  | Xpe.Name x, Xpe.Name y -> Xroute_support.Symbol.equal x y

(* Does a fixed path (bare names) belong to P(adv) for a non-recursive
   advertisement? Full-length match. *)
let non_recursive_matches_names symbols names =
  Array.length symbols = Array.length names
  && begin
    let ok = ref true in
    Array.iteri
      (fun i s ->
        match s with
        | Xpe.Star -> ()
        | Xpe.Name n ->
          if not (String.equal (Xroute_support.Symbol.name n) names.(i)) then ok := false)
      symbols;
    !ok
  end

(* Full-length match of a possibly recursive advertisement against a bare
   name path; backtracking over group repetitions. *)
let matches_names t names =
  let n = Array.length names in
  let sym_ok s i =
    match s with
    | Xpe.Star -> true
    | Xpe.Name x -> String.equal (Xroute_support.Symbol.name x) names.(i)
  in
  (* match parts starting at i; continue with [k] on the index after *)
  let rec match_parts parts i (k : int -> bool) =
    match parts with
    | [] -> k i
    | Lit a :: rest ->
      let len = Array.length a in
      let lit_ok =
        i + len <= n
        &&
        let rec check j = j >= len || (sym_ok a.(j) (i + j) && check (j + 1)) in
        check 0
      in
      lit_ok && match_parts rest (i + len) k
    | Group inner :: rest ->
      (* one or more repetitions of [inner] *)
      let rec one_rep i =
        match_parts inner i (fun j ->
            if j = i then false (* empty repetition would not terminate *)
            else match_parts rest j k || one_rep j)
      in
      one_rep i
  in
  match_parts t.parts 0 (fun i -> i = n)

(* Parser for the extended advertisement syntax, e.g. "/a/b(/c/d)+/e".
   Inverse of [to_string]; used by tests and the CLI. *)
exception Parse_error of { pos : int; message : string }

let parse input =
  let pos = ref 0 in
  let n = String.length input in
  let error message = raise (Parse_error { pos = !pos; message }) in
  let peek () = if !pos >= n then '\000' else input.[!pos] in
  let is_name_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.'
  in
  let parse_symbol () =
    if peek () = '*' then begin
      incr pos;
      Xpe.Star
    end
    else begin
      let start = !pos in
      while !pos < n && is_name_char (peek ()) do incr pos done;
      if !pos = start then error "expected an element name or *";
      Xpe.Name (Xroute_support.Symbol.intern (String.sub input start (!pos - start)))
    end
  in
  (* parts := ( '/' symbol | '(' parts ')+' )* *)
  let rec parse_parts stop_at_paren =
    let parts = ref [] in
    let current = ref [] in
    let flush () =
      if !current <> [] then begin
        parts := Lit (Array.of_list (List.rev !current)) :: !parts;
        current := []
      end
    in
    let rec go () =
      if !pos >= n then ()
      else
        match peek () with
        | '/' ->
          incr pos;
          current := parse_symbol () :: !current;
          go ()
        | '(' ->
          incr pos;
          flush ();
          let inner = parse_parts true in
          if inner = [] then error "empty group";
          if peek () <> ')' then error "expected ')'";
          incr pos;
          if peek () <> '+' then error "expected '+' after ')'";
          incr pos;
          parts := Group inner :: !parts;
          go ()
        | ')' when stop_at_paren -> ()
        | c -> error (Printf.sprintf "unexpected character %C" c)
    in
    go ();
    flush ();
    List.rev !parts
  in
  let parts = parse_parts false in
  if !pos <> n then error "trailing input";
  make parts

let parse_opt input =
  try Some (parse input) with Parse_error _ | Invalid_argument _ -> None

(* Number of groups anywhere in the advertisement. *)
let group_count t =
  let rec go = function
    | Lit _ -> 0
    | Group inner -> 1 + List.fold_left (fun acc p -> acc + go p) 0 inner
  in
  List.fold_left (fun acc p -> acc + go p) 0 t.parts

(* Unrollings whose total number of repetition instances (summed over all
   groups, counting nested instances) stays within [budget]. Any match of
   an XPE with k steps survives in an unrolling with at most
   k + group_count instances — untouched repetitions can be removed — so
   matching only needs this bounded set. *)
let expand_budget ~budget t =
  (* Each value is (segments, remaining_budget). *)
  let rec expand_parts parts budget =
    match parts with
    | [] -> [ ([], budget) ]
    | Lit a :: rest ->
      List.map (fun (tail, b) -> (Array.to_list a :: tail, b)) (expand_parts rest budget)
    | Group inner :: rest ->
      let rec do_reps budget =
        if budget <= 0 then []
        else
          let onces = expand_parts inner (budget - 1) in
          List.concat_map
            (fun (seg1, b1) ->
              (seg1, b1)
              :: List.map (fun (segs, b2) -> (seg1 @ segs, b2)) (do_reps b1))
            onces
      in
      List.concat_map
        (fun (gsegs, b) ->
          List.map (fun (tsegs, b') -> (gsegs @ tsegs, b')) (expand_parts rest b))
        (do_reps budget)
  in
  expand_parts t.parts budget
  |> List.map (fun (segments, _) -> Array.of_list (List.concat segments))
  |> List.sort_uniq Stdlib.compare
