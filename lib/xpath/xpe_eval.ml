(* XPE evaluation against concrete paths and documents.

   An XPE selects nodes; in the dissemination setting a publication (a
   root-to-leaf path) matches an XPE when the XPE selects some node on the
   path. Concretely, the XPE pattern must match a prefix of the path
   (absolute) or start anywhere (relative / leading [//]), with [//]
   allowing gaps.

   Matching is plain backtracking: XPEs and paths are bounded to ~10 steps
   in the paper's workloads, so worst-case exponential blowup from many
   [//] operators is irrelevant; correctness and clarity win.

   The core matcher runs over interned paths ([Symbol.t array]): the
   per-position node test is int equality. The string-array entry points
   intern and delegate, so one-off callers need no symbol plumbing. *)

module Symbol = Xroute_support.Symbol

let test_matches test element =
  match test with Xpe.Star -> true | Xpe.Name n -> Symbol.equal n element

let preds_match preds attrs =
  List.for_all
    (fun { Xpe.attr; value } ->
      match List.assoc_opt attr attrs with Some v -> String.equal v value | None -> false)
    preds

let step_matches (s : Xpe.step) element attrs =
  test_matches s.test element && preds_match s.preds attrs

(* Match the semantic steps against [syms]/[attrs] starting at [i]:
   a Child step consumes position [i]; a Desc step consumes some
   position [j >= i]. *)
let rec match_from ~syms ~attrs xpe_steps i =
  let n = Array.length syms in
  match xpe_steps with
  | [] -> true
  | ({ Xpe.axis = Child; _ } as s) :: rest ->
    i < n && step_matches s syms.(i) attrs.(i) && match_from ~syms ~attrs rest (i + 1)
  | ({ Xpe.axis = Desc; _ } as s) :: rest ->
    let rec try_at j =
      if j >= n then false
      else if step_matches s syms.(j) attrs.(j) && match_from ~syms ~attrs rest (j + 1) then true
      else try_at (j + 1)
    in
    try_at i

(* Core matcher: interned path. *)
let matches_syms xpe syms attrs = match_from ~syms ~attrs (Xpe.semantic_steps xpe) 0

let matches_steps xpe steps attrs = matches_syms xpe (Symbol.intern_path steps) attrs

(* Publication match: prefix/infix semantics described above, over the
   publication's pre-interned path. *)
let matches_publication xpe (p : Xroute_xml.Xml_paths.publication) =
  matches_syms xpe p.syms p.attrs

(* Element-name-only matching (no attributes), used by the workload
   and merging machinery where paths are bare name sequences. *)
let matches_names xpe names =
  matches_steps xpe names (Array.make (Array.length names) [])

(* A document matches when some root-to-leaf path does. *)
let matches_document xpe root =
  List.exists (matches_publication xpe) (Xroute_xml.Xml_paths.decompose ~doc_id:0 root)

(* All publications of [pubs] matching [xpe]. *)
let filter xpe pubs = List.filter (matches_publication xpe) pubs
