(** Advertisements (Sec. 3.1): absolute, [//]-free XPath-like patterns over
    element names and wildcards, optionally containing recursive [(...)+]
    groups derived from recursive DTDs. An advertisement matches a
    publication when the pattern matches the {e entire} path. *)

type symbol = Xpe.nodetest

type part =
  | Lit of symbol array  (** fixed-length run of names / wildcards *)
  | Group of part list  (** [(...)]+ — one or more repetitions *)

type t = private { parts : part list }

type shape = Non_recursive | Simple_recursive | Series_recursive | Embedded_recursive

(** Build an advertisement, normalizing away empty literals/groups and
    fusing adjacent literals.
    @raise Invalid_argument if the result would be empty. *)
val make : part list -> t

val parts : t -> part list

(** Non-recursive advertisement from names; ["*"] becomes the wildcard. *)
val of_names : string list -> t

val is_recursive : t -> bool
val shape : t -> shape

(** Minimum matched path length (each group at one repetition). *)
val min_length : t -> int

(** Length of a non-recursive advertisement.
    @raise Invalid_argument on recursive advertisements. *)
val length : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** Literal steps of a non-recursive advertisement.
    @raise Invalid_argument on recursive advertisements. *)
val to_symbols : t -> symbol array

(** Raised by {!expand} when the predicted unrolling count exceeds the
    [max_paths] cap — before any exponential list is materialized. *)
exception Expansion_limit of { cap : int; count : int }

(** Number of unrollings {!expand} would produce for the same
    [max_reps], computed from the structure alone (saturating at
    [max_int]). *)
val count_expansions : max_reps:int -> t -> int

(** Unroll every group 1..[max_reps] times; the resulting fixed paths (as
    symbol arrays) enumerate a finite under-approximation of [P(adv)].
    Exponential in the number of groups — keep [max_reps] small, or pass
    [?max_paths] to bound the blow-up up front.
    @raise Expansion_limit when the predicted count exceeds [max_paths]. *)
val expand : ?max_paths:int -> max_reps:int -> t -> symbol array list

(** Like [expand ~max_paths] but truncating instead of raising: at most
    [max_paths] unrollings, with [true] when anything was cut. Within
    the cap the result equals {!expand}'s. *)
val expand_capped : max_paths:int -> max_reps:int -> t -> symbol array list * bool

(** Do two node tests admit a common element name? *)
val symbols_overlap : symbol -> symbol -> bool

(** Exact full-length match of a non-recursive advertisement (given by its
    symbols) against a bare name path. *)
val non_recursive_matches_names : symbol array -> string array -> bool

(** Exact full-length match of any advertisement against a bare name path
    (backtracking over group repetitions). *)
val matches_names : t -> string array -> bool

exception Parse_error of { pos : int; message : string }

(** Parse the extended syntax, e.g. ["/a/b(/c/d)+/e"]; inverse of
    {!to_string}. @raise Parse_error on syntax errors. *)
val parse : string -> t

val parse_opt : string -> t option

(** Number of [(...)+] groups, nested ones included. *)
val group_count : t -> int

(** Unrollings with at most [budget] repetition instances in total
    (nested instances each count). Complete for matching XPEs of length
    [k] when [budget >= k + group_count t]. *)
val expand_budget : budget:int -> t -> symbol array list
