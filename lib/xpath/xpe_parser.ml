(* Parser for the XPE fragment: [/], [//], [*], names, and attribute
   equality predicates such as [//book/chapter[@lang='en']/title]. *)

exception Parse_error of { pos : int; message : string }

type state = { input : string; mutable pos : int }

let error st message = raise (Parse_error { pos = st.pos; message })

let eof st = st.pos >= String.length st.input

let peek st = if eof st then '\000' else st.input.[st.pos]

let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then
    error st (Printf.sprintf "expected an element name or *, found %C" (peek st));
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

let parse_test st =
  if peek st = '*' then begin
    advance st;
    Xpe.Star
  end
  else Xpe.Name (Xroute_support.Symbol.intern (parse_name st))

(* A predicate of the form [@attr='value'] or [@attr="value"]. *)
let parse_predicate st =
  advance st (* '[' *);
  if peek st <> '@' then error st "only attribute predicates [@name='value'] are supported";
  advance st;
  let attr = parse_name st in
  if peek st <> '=' then error st "expected '=' in attribute predicate";
  advance st;
  let quote = peek st in
  if quote <> '\'' && quote <> '"' then error st "expected quoted value in attribute predicate";
  advance st;
  let start = st.pos in
  while (not (eof st)) && peek st <> quote do
    advance st
  done;
  if eof st then error st "unterminated attribute value";
  let value = String.sub st.input start (st.pos - start) in
  advance st (* closing quote *);
  if peek st <> ']' then error st "expected ']' to close predicate";
  advance st;
  { Xpe.attr; value }

let parse_predicates st =
  let rec go acc = if peek st = '[' then go (parse_predicate st :: acc) else List.rev acc in
  go []

let parse_step st axis =
  let test = parse_test st in
  let preds = parse_predicates st in
  Xpe.step ~preds axis test

let parse input =
  let st = { input; pos = 0 } in
  if eof st then error st "empty XPath expression";
  let relative, first_axis =
    if looking_at st "//" then begin
      advance st;
      advance st;
      (false, Xpe.Desc)
    end
    else if peek st = '/' then begin
      advance st;
      (false, Xpe.Child)
    end
    else (true, Xpe.Child)
  in
  let first = parse_step st first_axis in
  let rec go acc =
    if eof st then List.rev acc
    else if looking_at st "//" then begin
      advance st;
      advance st;
      go (parse_step st Xpe.Desc :: acc)
    end
    else if peek st = '/' then begin
      advance st;
      go (parse_step st Xpe.Child :: acc)
    end
    else error st (Printf.sprintf "unexpected character %C" (peek st))
  in
  let steps = go [ first ] in
  Xpe.make ~relative steps

let parse_opt input = try Some (parse input) with Parse_error _ | Invalid_argument _ -> None

let error_message = function
  | Parse_error { pos; message } ->
    Some (Printf.sprintf "XPath parse error at offset %d: %s" pos message)
  | _ -> None
