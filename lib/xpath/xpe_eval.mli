(** Evaluation of XPEs against paths and documents.

    A publication [/t1/.../tn] matches an XPE when the XPE selects a node
    on the path: the pattern matches a prefix (absolute XPE) or any infix
    starting point (relative XPE / leading [//]), with [//] allowing
    gaps. *)

(** [matches_syms xpe syms attrs] — core matcher over an interned path
    plus per-position attributes. [syms] and [attrs] must have equal
    lengths. *)
val matches_syms :
  Xpe.t -> Xroute_support.Symbol.t array -> (string * string) list array -> bool

(** [matches_steps xpe steps attrs] — {!matches_syms} after interning
    the element names. *)
val matches_steps : Xpe.t -> string array -> (string * string) list array -> bool

val matches_publication : Xpe.t -> Xroute_xml.Xml_paths.publication -> bool

(** Match a bare name sequence (all attribute lists empty). *)
val matches_names : Xpe.t -> string array -> bool

(** True when some root-to-leaf path of the document matches. *)
val matches_document : Xpe.t -> Xroute_xml.Xml_tree.t -> bool

val filter :
  Xpe.t -> Xroute_xml.Xml_paths.publication list -> Xroute_xml.Xml_paths.publication list
