(* XPath expressions (XPEs) — the paper's subscription language.

   The supported fragment is single-path XPath with the parent-child
   operator [/], the ancestor-descendant operator [//], the wildcard [*],
   and (as the extension the paper sketches in Sec. 3.1) attribute equality
   predicates [\[@name='value'\]].

   An XPE is "absolute" when it starts with [/] or [//] and "relative"
   otherwise (e.g. [d/a]); a relative XPE may match starting at any
   position of a path. Semantically a relative XPE is equivalent to the
   absolute XPE obtained by prefixing [//], but the two are kept distinct
   because the paper's subscription-tree and covering algorithms treat them
   differently (Sec. 4.1, "Property of a Relative XPE node"). *)

module Symbol = Xroute_support.Symbol

(* Node tests carry interned names: equality on the matching hot paths
   (NFA edges, publication evaluation, covering) is int equality. *)
type nodetest = Star | Name of Symbol.t

type axis = Child | Desc

type predicate = { attr : string; value : string }

type step = { axis : axis; test : nodetest; preds : predicate list }

type t = { relative : bool; steps : step list }

let step ?(preds = []) axis test = { axis; test; preds }

let make ?(relative = false) steps =
  if steps = [] then invalid_arg "Xpe.make: an XPE needs at least one step";
  (match steps with
  | { axis = Desc; _ } :: _ when relative ->
    invalid_arg "Xpe.make: a relative XPE cannot start with //"
  | _ -> ());
  { relative; steps }

(* Node test from a plain name (interned); "*" becomes the wildcard. *)
let test_of_string n = if String.equal n "*" then Star else Name (Symbol.intern n)

(* Absolute XPE /t1/t2/... from plain names; "*" becomes the wildcard. *)
let absolute_of_names names = make (List.map (fun n -> step Child (test_of_string n)) names)

let length t = List.length t.steps

let is_relative t = t.relative
let is_absolute t = not t.relative

(* Simple XPEs contain no descendant operator (Sec. 3.2). *)
let is_simple t = List.for_all (fun s -> s.axis = Child) t.steps

let has_wildcard t = List.exists (fun s -> s.test = Star) t.steps

let has_predicates t = List.exists (fun s -> s.preds <> []) t.steps

(* Steps of the XPE as they would match positions: for a relative XPE the
   first step behaves as if introduced by [//]. *)
let semantic_steps t =
  match (t.relative, t.steps) with
  | true, first :: rest -> { first with axis = Desc } :: rest
  | _, steps -> steps

let test_to_string = function Star -> "*" | Name n -> Symbol.name n

let pred_to_string { attr; value } = Printf.sprintf "[@%s='%s']" attr value

let step_to_buf ~first ~relative buf s =
  (match (s.axis, first, relative) with
  | Child, true, true -> ()
  | Child, _, _ -> Buffer.add_char buf '/'
  | Desc, _, _ -> Buffer.add_string buf "//");
  Buffer.add_string buf (test_to_string s.test);
  List.iter (fun p -> Buffer.add_string buf (pred_to_string p)) s.preds

let to_string t =
  let buf = Buffer.create 32 in
  List.iteri (fun i s -> step_to_buf ~first:(i = 0) ~relative:t.relative buf s) t.steps;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

let compare_nodetest a b =
  match (a, b) with
  | Star, Star -> 0
  | Star, Name _ -> -1
  | Name _, Star -> 1
  (* [compare_name], not id order: node-test order must not depend on
     interning order (it feeds Xpe.compare and every sort built on it). *)
  | Name x, Name y -> Symbol.compare_name x y

let compare_pred a b =
  match String.compare a.attr b.attr with 0 -> String.compare a.value b.value | c -> c

let compare_step a b =
  match compare a.axis b.axis with
  | 0 -> (
    match compare_nodetest a.test b.test with
    | 0 -> List.compare compare_pred a.preds b.preds
    | c -> c)
  | c -> c

let compare a b =
  match Bool.compare a.relative b.relative with
  | 0 -> List.compare compare_step a.steps b.steps
  | c -> c

let equal a b = compare a b = 0

let hash t = Hashtbl.hash (to_string t)

(* Element names mentioned by the XPE (wildcards excluded). *)
let names t =
  List.filter_map
    (fun s -> match s.test with Name n -> Some (Symbol.name n) | Star -> None)
    t.steps

(* Split at descendant operators into maximal-length simple sub-XPEs
   (Sec. 3.2, DesExprAndAdv): "/a/b//c/*//d" gives [ [a;b]; [c;*]; [d] ],
   each as a list of steps with Child axes. The first segment of an
   absolute XPE starting with "/" is anchored at the root. *)
let split_on_desc t =
  let rec go current acc = function
    | [] -> List.rev (List.rev current :: acc)
    | ({ axis = Child; _ } as s) :: rest -> go (s :: current) acc rest
    | ({ axis = Desc; _ } as s) :: rest ->
      if current = [] then go [ { s with axis = Child } ] acc rest
      else go [ { s with axis = Child } ] (List.rev current :: acc) rest
  in
  match t.steps with
  | [] -> []
  | steps -> go [] [] steps

(* True when the first segment returned by [split_on_desc] is anchored at
   the root (the XPE is absolute and starts with [/], not [//]). *)
let first_segment_anchored t =
  match (t.relative, t.steps) with
  | true, _ -> false
  | false, { axis = Child; _ } :: _ -> true
  | false, _ -> false
