(** XPath expressions (XPEs): single-path XPath with [/], [//], [*] and
    attribute equality predicates. *)

(** Node tests carry interned names ({!Xroute_support.Symbol}): hot-path
    name comparisons are int equality. *)
type nodetest = Star | Name of Xroute_support.Symbol.t

type axis =
  | Child  (** the [/] operator *)
  | Desc  (** the [//] operator *)

type predicate = { attr : string; value : string }

type step = { axis : axis; test : nodetest; preds : predicate list }

type t = private { relative : bool; steps : step list }

val step : ?preds:predicate list -> axis -> nodetest -> step

(** Build an XPE. A relative XPE (one written without a leading operator,
    e.g. [d/a]) may not start with [//].
    @raise Invalid_argument on an empty step list. *)
val make : ?relative:bool -> step list -> t

(** Node test from a plain name (interned); ["*"] becomes the wildcard. *)
val test_of_string : string -> nodetest

(** [/t1/t2/...] from plain names; ["*"] becomes the wildcard. *)
val absolute_of_names : string list -> t

(** Number of location steps. *)
val length : t -> int

val is_relative : t -> bool
val is_absolute : t -> bool

(** No descendant operator anywhere. *)
val is_simple : t -> bool

val has_wildcard : t -> bool
val has_predicates : t -> bool

(** Steps with the relative-XPE convention compiled away: for a relative
    XPE the first step is reported with a [Desc] axis. *)
val semantic_steps : t -> step list

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val test_to_string : nodetest -> string
val pred_to_string : predicate -> string

val compare_nodetest : nodetest -> nodetest -> int
val compare_step : step -> step -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** Element names mentioned (wildcards excluded). *)
val names : t -> string list

(** Maximal [//]-free segments, each a list of [Child]-axis steps
    (Sec. 3.2 of the paper). *)
val split_on_desc : t -> step list list

(** Whether the first segment of {!split_on_desc} is anchored at the
    root. *)
val first_segment_anchored : t -> bool
