(** Scale-parameterized simulation scenarios.

    Seeded workload shapes — flash crowd, diurnal publish cycles, mass
    churn, multichannel fan-out — that drive the overlay simulator at
    anything from smoke scale to a million subscribers. Subscribers are
    virtual clients emitted lazily in batches (the full population is
    never materialized); deliveries stream into a chunked arena ledger
    (full rows at small scale, a running digest at large scale).

    Scenarios are bit-for-bit deterministic from their spec, across runs
    and across the simulator's [`Heap] and [`List] queue backends —
    {!differential} is the standing gate. *)

type kind =
  | Flash_crowd  (** burst arrival of subscribers on one hot DTD subtree *)
  | Diurnal  (** sinusoidally modulated publish rate over [rounds] cycles *)
  | Churn  (** mass unsubscribe/resubscribe waves after the initial load *)
  | Fanout  (** [channels] feeds, each client subscribed to one *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list

type spec = {
  kind : kind;
  clients : int;  (** virtual subscriber population *)
  docs : int;  (** documents published *)
  levels : int;  (** binary-tree topology levels *)
  xpes : int;  (** distinct subscription pool size *)
  batch : int;  (** subscribers emitted per generator event *)
  rounds : int;  (** churn waves / diurnal cycles *)
  channels : int;  (** fanout feeds *)
  seed : int;
  dtd : string;  (** a {!Xroute_dtd.Dtd_samples} name *)
  zipf : float option;
      (** Zipf exponent for assigning clients to subscription-pool
          entries ([zipf=<s>] in the spec string). [None] keeps the
          per-kind default: 1.1 for flash crowds, 0.6 otherwise.
          [Some 0.] is the uniform pool. Ignored by the fanout kind,
          whose channels partition the pool instead. *)
}

(** flash, 2000 clients, 12 docs, 4 levels, 128 XPEs, batch 512,
    3 rounds, 8 channels, seed 42, nitf. *)
val default_spec : spec

val spec_to_string : spec -> string

(** Parse a [k=v,k=v] spec (keys [kind], [clients], [docs], [levels],
    [xpes], [batch], [rounds], [channels], [seed], [dtd]; unmentioned
    keys keep {!default_spec} values), e.g.
    ["kind=churn,clients=100000,seed=7"]. *)
val spec_of_string : string -> (spec, string) result

(** Ledger capture: [`Full] keeps every (cid, doc_id, time) row in an
    arena; [`Digest] keeps only the running digest and count; [`Auto]
    (default) is [`Full] up to 20k clients. *)
type ledger_mode = [ `Full | `Digest | `Auto ]

type outcome = {
  spec : spec;
  queue : Xroute_overlay.Sim.queue_kind;
  subs_sent : int;
  unsubs_sent : int;
  docs_published : int;
  deliveries : int;  (** edge-sink rows (one per path-publication delivery) *)
  events : int;  (** simulator events executed *)
  virtual_ms : float;  (** final virtual clock *)
  ledger : Xroute_support.Pool.Arena.t option;
      (** (cid, doc_id, time) rows in arrival order, [`Full] mode only *)
  ledger_digest : int64;  (** always computed, arena-compatible *)
  decisions : string list;
      (** per-broker next-hop probe lines (each path publication replayed
          through every broker), when probing is on *)
  decision_digest : int64;
  fault_line : string;  (** rendered fault counters *)
  prt_total : int;
  srt_total : int;
  dropped_pubs : int;
}

(** Run one scenario. [decisions] forces the next-hop probe on or off
    (default: on up to 20k clients). [fault_spec] overlays a seeded
    fault plan ({!Xroute_fault.Plan.generate}) on the scenario. *)
val run :
  ?queue:Xroute_overlay.Sim.queue_kind ->
  ?ledger:ledger_mode ->
  ?decisions:bool ->
  ?fault_spec:Xroute_fault.Plan.spec ->
  spec ->
  outcome

(** Full-row ledger equality when both outcomes carry arenas (same rows,
    same order); digest + count equality otherwise. *)
val equal_ledgers : outcome -> outcome -> bool

(** Run [spec] on both queue backends and compare ledgers, decisions,
    fault accounting, event and delivery counts. Returns both outcomes
    and the list of discrepancies — empty means the gate passes. *)
val differential :
  ?ledger:ledger_mode ->
  ?fault_spec:Xroute_fault.Plan.spec ->
  spec ->
  outcome * outcome * string list
