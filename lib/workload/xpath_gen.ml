(* XPath query workload generator, after the generator of Diao et al.
   used by the paper: queries are random walks over the DTD, decorated
   with wildcards (probability W) and descendant operators (probability
   DO), optionally relative, optionally carrying attribute predicates,
   with element choices skewed by a Zipf law so that subscription
   populations overlap (the knob behind the paper's Set A / Set B
   covering rates). *)

open Xroute_xpath

type params = {
  dtd : Xroute_dtd.Dtd_ast.t;
  max_depth : int; (* maximum number of location steps (paper: 10) *)
  min_depth : int;
  wildcard_prob : float; (* W: a step's name test becomes * *)
  desc_prob : float; (* DO: a step's operator becomes // *)
  relative_prob : float; (* the XPE keeps no root anchoring *)
  pred_prob : float; (* a step gains an attribute predicate *)
  skew : float; (* Zipf exponent over child choices (0 = uniform) *)
  max_wildcards : int; (* cap on * steps per query: a handful of heavily
                          starred queries would cover whole workloads *)
}

let default_params dtd =
  {
    dtd;
    max_depth = 10;
    min_depth = 2;
    wildcard_prob = 0.2;
    desc_prob = 0.2;
    relative_prob = 0.1;
    pred_prob = 0.0;
    skew = 0.9;
    max_wildcards = max_int;
  }

(* Pick from a list with Zipf skew over its (stable) order; the Zipf
   tables are shared per (length, skew). *)
let zipf_cache : (int * float, Xroute_support.Zipf.t) Hashtbl.t = Hashtbl.create 16

let pick_skewed prng ~skew items =
  match items with
  | [] -> None
  | [ x ] -> Some x
  | items ->
    let n = List.length items in
    let z =
      match Hashtbl.find_opt zipf_cache (n, skew) with
      | Some z -> z
      | None ->
        let z = Xroute_support.Zipf.create ~n ~exponent:skew in
        Hashtbl.replace zipf_cache (n, skew) z;
        z
    in
    Some (List.nth items (Xroute_support.Zipf.sample z prng))

(* A random attribute predicate for an element, when it declares usable
   attributes. *)
let random_predicate prng (dtd : Xroute_dtd.Dtd_ast.t) name =
  match Xroute_dtd.Dtd_ast.find dtd name with
  | None -> None
  | Some decl ->
    let usable =
      List.filter_map
        (fun (a : Xroute_dtd.Dtd_ast.attr_decl) ->
          match a.attr_type with
          | Xroute_dtd.Dtd_ast.Enum values when values <> [] -> Some (a.attr_name, values)
          | Xroute_dtd.Dtd_ast.Cdata | Xroute_dtd.Dtd_ast.Id | Xroute_dtd.Dtd_ast.Idref
          | Xroute_dtd.Dtd_ast.Nmtoken | Xroute_dtd.Dtd_ast.Enum _ ->
            None)
        decl.attrs
    in
    (match usable with
    | [] -> None
    | l ->
      let attr, values = Xroute_support.Prng.choose_list prng l in
      Some { Xpe.attr; value = Xroute_support.Prng.choose_list prng values })

(* Height of each element: the longest downward path starting at it
   (elements on cycles are unbounded). Guides walks so they only enter
   subtrees that can still reach the target query length — without this,
   walks dead-end early and the resulting short queries cover everything
   below them, flattening any covering-rate target. *)
let heights_cache : (string, (string, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 4

let heights_of dtd =
  let key =
    Printf.sprintf "%s#%d" (Xroute_dtd.Dtd_ast.root dtd) (Xroute_dtd.Dtd_ast.element_count dtd)
  in
  match Hashtbl.find_opt heights_cache key with
  | Some h -> h
  | None ->
    let table = Hashtbl.create 64 in
    let unbounded = 1_000_000 in
    let rec height name visiting =
      match Hashtbl.find_opt table name with
      | Some h -> h
      | None ->
        if List.mem name visiting then unbounded
        else begin
          let children =
            match Xroute_dtd.Dtd_ast.find dtd name with
            | Some d -> Xroute_dtd.Dtd_ast.content_elements d.content
            | None -> []
          in
          let h =
            1
            + List.fold_left (fun acc c -> max acc (height c (name :: visiting))) 0 children
          in
          let h = min h unbounded in
          (* only memoize cycle-free results; conservative on cycles *)
          if h < unbounded then Hashtbl.replace table name h else Hashtbl.replace table name unbounded;
          h
        end
    in
    Xroute_dtd.Dtd_ast.fold (fun d () -> ignore (height d.el_name [])) dtd ();
    Hashtbl.replace heights_cache key table;
    table

(* One random XPE. A walk that still dead-ends before [min_depth] steps
   (possible only from unlucky retry exhaustion) is redrawn. *)
let rec generate_one ?(attempts = 25) params prng =
  let dtd = params.dtd in
  let heights = heights_of dtd in
  let height name = Option.value ~default:1 (Hashtbl.find_opt heights name) in
  let target_len =
    Xroute_support.Prng.int_in_range prng ~lo:params.min_depth ~hi:params.max_depth
  in
  (* Walk the element graph from the root; prefer children whose height
     still allows [n] more steps. *)
  let rec walk name acc n =
    if n <= 0 then List.rev acc
    else begin
      let children =
        match Xroute_dtd.Dtd_ast.find dtd name with
        | Some d -> Xroute_dtd.Dtd_ast.content_elements d.content
        | None -> []
      in
      let viable = List.filter (fun c -> height c >= n) children in
      let pool = if viable <> [] then viable else children in
      match pick_skewed prng ~skew:params.skew pool with
      | None -> List.rev acc
      | Some child -> walk child (child :: acc) (n - 1)
    end
  in
  let root = Xroute_dtd.Dtd_ast.root dtd in
  let names = walk root [ root ] (target_len - 1) in
  if List.length names < params.min_depth && attempts > 0 then
    generate_one ~attempts:(attempts - 1) params prng
  else begin
  let relative = Xroute_support.Prng.bernoulli prng params.relative_prob in
  (* A relative XPE keeps a random suffix of the walk. *)
  let names =
    if relative && List.length names > 1 then begin
      let drop = Xroute_support.Prng.int prng (List.length names - 1) in
      let rec drop_n n = function l when n <= 0 -> l | _ :: tl -> drop_n (n - 1) tl | [] -> [] in
      drop_n drop names
    end
    else names
  in
  let steps =
    List.mapi
      (fun i name ->
        (* Wildcards and descendant operators are damped on the first
           step: every document path shares the DTD root, so queries
           like //root or /* cover the whole workload and would flatten
           any covering-rate target. *)
        let wprob = if i = 0 then params.wildcard_prob *. 0.15 else params.wildcard_prob in
        let dprob = if i = 0 then params.desc_prob *. 0.1 else params.desc_prob in
        let test =
          if Xroute_support.Prng.bernoulli prng wprob then Xpe.Star else Xpe.test_of_string name
        in
        let axis =
          if i = 0 then
            if relative then Xpe.Child
            else if Xroute_support.Prng.bernoulli prng dprob then Xpe.Desc
            else Xpe.Child
          else if Xroute_support.Prng.bernoulli prng params.desc_prob then Xpe.Desc
          else Xpe.Child
        in
        let preds =
          if test <> Xpe.Star && Xroute_support.Prng.bernoulli prng params.pred_prob then
            match random_predicate prng dtd name with Some p -> [ p ] | None -> []
          else []
        in
        Xpe.step ~preds axis test)
      names
  in
  let stars = List.length (List.filter (fun (s : Xpe.step) -> s.test = Xpe.Star) steps) in
  if stars > params.max_wildcards && attempts > 0 then
    generate_one ~attempts:(attempts - 1) params prng
  else match steps with [] -> Xpe.absolute_of_names [ root ] | _ -> Xpe.make ~relative steps
  end

(* [count] XPEs; with [distinct] (the paper's setting) duplicates are
   re-drawn, giving up after a bounded number of attempts. *)
let generate ?(distinct = true) params prng ~count =
  if not distinct then List.init count (fun _ -> generate_one params prng)
  else begin
    let seen = Hashtbl.create (2 * count) in
    let acc = ref [] in
    let produced = ref 0 in
    let attempts = ref 0 in
    let max_attempts = (count * 50) + 1000 in
    while !produced < count && !attempts < max_attempts do
      incr attempts;
      let xpe = generate_one params prng in
      let key = Xpe.to_string xpe in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        acc := xpe :: !acc;
        incr produced
      end
    done;
    List.rev !acc
  end
