(* Scale-parameterized simulation scenarios: seeded workload shapes that
   drive the overlay simulator at anything from smoke scale to a million
   subscribers.

   The scale trick is laziness at both edges. Subscribers are *virtual*
   clients ([Net.alloc_cids] + [Net.subscribe_virtual]): no client
   record, ledger, or delivery table is ever materialized — the only
   per-client state is what the brokers themselves hold (their PRTs,
   which covering keeps compressed). Subscriptions are emitted by
   self-rescheduling generator events, [batch] clients at a time, so the
   event queue holds one batch of arrivals — never the full population.
   Deliveries come back through the network's edge sink and land in a
   chunked arena ledger (full rows at small scale, a running digest at
   large scale).

   Every scenario is bit-for-bit deterministic from its spec: the same
   spec and seed produce identical delivery ledgers, fault statistics
   and routing decisions — across runs and across the simulator's [`Heap]
   and [`List] queue backends, which is the standing differential gate
   that makes the million-client numbers trustworthy. *)

open Xroute_overlay
module Pool = Xroute_support.Pool
module Prng = Xroute_support.Prng
module Zipf = Xroute_support.Zipf
module Message = Xroute_core.Message
module Rtable = Xroute_core.Rtable
module Broker = Xroute_core.Broker

type kind =
  | Flash_crowd  (** burst arrival of subscribers on one hot DTD subtree *)
  | Diurnal  (** sinusoidally modulated publish rate over [rounds] cycles *)
  | Churn  (** mass unsubscribe/resubscribe waves after the initial load *)
  | Fanout  (** [channels] feeds, each client on one channel *)

let kind_to_string = function
  | Flash_crowd -> "flash"
  | Diurnal -> "diurnal"
  | Churn -> "churn"
  | Fanout -> "fanout"

let kind_of_string = function
  | "flash" | "flash-crowd" -> Some Flash_crowd
  | "diurnal" -> Some Diurnal
  | "churn" -> Some Churn
  | "fanout" -> Some Fanout
  | _ -> None

let all_kinds = [ Flash_crowd; Diurnal; Churn; Fanout ]

type spec = {
  kind : kind;
  clients : int;
  docs : int;
  levels : int; (* binary-tree topology levels *)
  xpes : int; (* distinct subscription pool size *)
  batch : int; (* subscribers emitted per generator event *)
  rounds : int; (* churn waves / diurnal cycles *)
  channels : int; (* fanout feeds *)
  seed : int;
  dtd : string;
  zipf : float option; (* pool-assignment skew override, None = per-kind *)
}

let default_spec =
  {
    kind = Flash_crowd;
    clients = 2_000;
    docs = 12;
    levels = 4;
    xpes = 128;
    batch = 512;
    rounds = 3;
    channels = 8;
    seed = 42;
    dtd = "nitf";
    zipf = None;
  }

let spec_to_string s =
  Printf.sprintf
    "kind=%s,clients=%d,docs=%d,levels=%d,xpes=%d,batch=%d,rounds=%d,channels=%d,seed=%d,dtd=%s%s"
    (kind_to_string s.kind) s.clients s.docs s.levels s.xpes s.batch s.rounds s.channels
    s.seed s.dtd
    (match s.zipf with None -> "" | Some z -> Printf.sprintf ",zipf=%g" z)

let spec_of_string s =
  let parse_field spec kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "bad scenario field %S (want key=value)" kv)
    | Some i -> (
      let key = String.sub kv 0 i in
      let value = String.sub kv (i + 1) (String.length kv - i - 1) in
      let int_of ~min:lo () =
        match int_of_string_opt value with
        | Some n when n >= lo -> Ok n
        | _ -> Error (Printf.sprintf "bad count %S for %s" value key)
      in
      match key with
      | "kind" -> (
        match kind_of_string value with
        | Some k -> Ok { spec with kind = k }
        | None -> Error (Printf.sprintf "unknown scenario kind %S" value))
      | "clients" -> Result.map (fun n -> { spec with clients = n }) (int_of ~min:0 ())
      | "docs" -> Result.map (fun n -> { spec with docs = n }) (int_of ~min:0 ())
      | "levels" -> Result.map (fun n -> { spec with levels = n }) (int_of ~min:2 ())
      | "xpes" -> Result.map (fun n -> { spec with xpes = n }) (int_of ~min:1 ())
      | "batch" -> Result.map (fun n -> { spec with batch = n }) (int_of ~min:1 ())
      | "rounds" -> Result.map (fun n -> { spec with rounds = n }) (int_of ~min:1 ())
      | "channels" -> Result.map (fun n -> { spec with channels = n }) (int_of ~min:1 ())
      | "seed" -> Result.map (fun n -> { spec with seed = n }) (int_of ~min:0 ())
      | "dtd" ->
        if List.mem value Xroute_dtd.Dtd_samples.names then Ok { spec with dtd = value }
        else Error (Printf.sprintf "unknown dtd %S" value)
      | "zipf" -> (
        match float_of_string_opt value with
        | Some z when z >= 0.0 && z <= 16.0 ->
          Ok { spec with zipf = Some z }
        | _ -> Error (Printf.sprintf "bad zipf exponent %S (want 0 <= s <= 16)" value))
      | _ -> Error (Printf.sprintf "unknown scenario key %S" key))
  in
  List.fold_left
    (fun acc kv -> Result.bind acc (fun spec -> parse_field spec kv))
    (Ok default_spec)
    (List.filter (fun f -> f <> "") (String.split_on_char ',' s))

type ledger_mode = [ `Full | `Digest | `Auto ]

type outcome = {
  spec : spec;
  queue : Sim.queue_kind;
  subs_sent : int;
  unsubs_sent : int;
  docs_published : int;
  deliveries : int; (* edge-sink rows (one per path-publication delivery) *)
  events : int; (* simulator events executed *)
  virtual_ms : float; (* final virtual clock *)
  ledger : Pool.Arena.t option; (* rows (cid, doc_id, time), [`Full] mode only *)
  ledger_digest : int64; (* always: Arena-compatible running digest *)
  decisions : string list; (* per-broker next-hop probe lines, when probed *)
  decision_digest : int64;
  fault_line : string; (* rendered fault_stats *)
  prt_total : int;
  srt_total : int;
  dropped_pubs : int;
}

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let string_digest h s = Pool.Arena.digest_row h (Hashtbl.hash s) (String.length s) 0.0

let fault_line (fs : Net.fault_stats) =
  Printf.sprintf
    "crashes=%d restarts=%d requeues=%d dups=%d destroyed=%d destroyed_pubs=%d \
     disconnects=%d reconnects=%d replayed=%d recoveries=%d"
    fs.Net.crashes fs.Net.restarts fs.Net.requeues fs.Net.dup_deliveries fs.Net.destroyed
    fs.Net.destroyed_pubs fs.Net.client_disconnects fs.Net.client_reconnects fs.Net.replayed
    (List.length fs.Net.recovery_times)

(* Per-broker next-hop decisions, read by replaying every path
   publication through [Broker.handle] from a phantom endpoint (the
   test_fault.ml convention): what must be identical across runs and
   queue backends is where each publication goes. Mutates broker
   counters — call it after every other metric is collected. *)
let probe_decisions net docs =
  let pubs =
    List.concat (List.mapi (fun i doc -> Xroute_xml.Xml_paths.decompose ~doc_id:i doc) docs)
  in
  let phantom = Rtable.Client (-1) in
  Array.to_list (Net.brokers net)
  |> List.concat_map (fun b ->
         List.concat
           (List.mapi
              (fun j (pub : Xroute_xml.Xml_paths.publication) ->
                Broker.handle b ~from:phantom (Message.Publish { pub; trail = []; ctx = None })
                |> List.map (fun (ep, _) ->
                       Format.asprintf "b%d p%d -> %a" (Broker.id b) j Rtable.pp_endpoint ep)
                |> List.sort compare)
              pubs))

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)
(* ------------------------------------------------------------------ *)

let run ?(queue = `Heap) ?(ledger = `Auto) ?decisions ?fault_spec spec =
  let dtd =
    match Xroute_dtd.Dtd_samples.by_name spec.dtd with
    | Some d -> d
    | None -> invalid_arg (Printf.sprintf "Scenario.run: unknown dtd %S" spec.dtd)
  in
  let topo = Topology.binary_tree ~levels:spec.levels in
  let leaves = Array.of_list (Topology.binary_tree_leaves ~levels:spec.levels) in
  let nleaves = Array.length leaves in
  let config = { Net.default_config with Net.seed = spec.seed } in
  let net = Net.create ~config ~queue topo in
  let sim = Net.sim net in

  (* Delivery ledger: full rows at small scale, running digest always. *)
  let full =
    match ledger with `Full -> true | `Digest -> false | `Auto -> spec.clients <= 20_000
  in
  let arena = if full then Some (Pool.Arena.create ()) else None in
  let digest = ref Pool.Arena.digest_empty in
  let rows = ref 0 in
  Net.set_edge_sink net (fun cid doc_id time ->
      (match arena with Some a -> ignore (Pool.Arena.add a cid doc_id time) | None -> ());
      digest := Pool.Arena.digest_row !digest cid doc_id time;
      incr rows);

  (* Publishers are real (materialized) clients: one at the root broker,
     or one per channel spread over the leaves for [Fanout]. Each
     advertises the DTD's advertisement set so subscriptions route
     toward every feed. *)
  let npubs =
    match spec.kind with Fanout -> max 1 (min spec.channels nleaves) | _ -> 1
  in
  let publishers =
    Array.init npubs (fun i ->
        Net.add_client net ~broker:(if npubs = 1 then 0 else leaves.(i mod nleaves)))
  in
  let advs = Xroute_dtd.Dtd_paths.advertisements (Xroute_dtd.Dtd_graph.build dtd) in
  Array.iter (fun p -> ignore (Net.advertise_dtd net p advs)) publishers;
  Net.run net;

  (* Subscription pool: [xpes] distinct expressions drawn once. The
     flash crowd concentrates DTD walks (high Zipf skew over child
     choices -> one subtree dominates) and assigns clients to pool
     entries with a steep Zipf, so the crowd piles onto a few hot
     expressions of one subtree. *)
  let params = Workload.set_a_params dtd in
  let params =
    match spec.kind with
    | Flash_crowd -> { params with Xpath_gen.skew = 1.5 }
    | _ -> params
  in
  let pool =
    Array.of_list (Workload.xpes ~params ~count:spec.xpes ~seed:(spec.seed + 101) ())
  in
  if Array.length pool = 0 then invalid_arg "Scenario.run: empty XPE pool";
  let assign_prng = Prng.create (spec.seed + 202) in
  let zipf =
    let exponent =
      match spec.zipf with
      | Some s -> s
      | None -> ( match spec.kind with Flash_crowd -> 1.1 | _ -> 0.6)
    in
    Zipf.create ~n:(Array.length pool) ~exponent
  in
  let pick i =
    match spec.kind with
    | Fanout ->
      (* Channel c = client mod channels; its sub-pool is every index
         congruent to c. *)
      let c = i mod spec.channels in
      let per = (Array.length pool + spec.channels - 1 - c + spec.channels) / spec.channels in
      let per = max 1 (min per ((Array.length pool - c + spec.channels - 1) / spec.channels)) in
      let j = c + (spec.channels * Prng.int assign_prng per) in
      pool.(min j (Array.length pool - 1))
    | _ -> pool.(Zipf.sample zipf assign_prng)
  in

  (* Virtual subscribers: an id block, no records. *)
  let cid0 = Net.alloc_cids net spec.clients in
  let subs_sent = ref 0 in
  let unsubs_sent = ref 0 in
  let seqs = match spec.kind with Churn -> Array.make (max spec.clients 1) 0 | _ -> [||] in
  let subscribe_client i =
    let xpe = pick i in
    let id = Net.subscribe_virtual net ~broker:leaves.(i mod nleaves) ~cid:(cid0 + i) xpe in
    if spec.kind = Churn then seqs.(i) <- id.Message.seq;
    incr subs_sent
  in

  (* Lazy batched emission: each generator event materializes [batch]
     arrivals, then re-schedules itself — the queue never holds the
     population. [gap] is the inter-batch virtual time. *)
  let emit_range ~gap ~start ~stop ~f () =
    let rec go i () =
      if i < stop then begin
        let upto = min (i + spec.batch) stop in
        for j = i to upto - 1 do
          f j
        done;
        if upto < stop then Sim.schedule sim ~delay:gap (go upto)
      end
    in
    go start ()
  in
  let gap = match spec.kind with Flash_crowd -> 0.25 | _ -> 1.0 in
  let nbatches = (max spec.clients 1 + spec.batch - 1) / spec.batch in
  let sub_start = 10.0 in
  let sub_end = sub_start +. (float_of_int nbatches *. gap) +. 50.0 in

  Sim.schedule sim ~delay:sub_start
    (emit_range ~gap ~start:0 ~stop:spec.clients ~f:subscribe_client);

  (* Publications, shaped per kind. *)
  let docs_published = ref 0 in
  let documents =
    Array.of_list (Workload.documents ~dtd ~count:spec.docs ~seed:(spec.seed + 303) ())
  in
  let publish_at ~publisher ~at doc_id =
    Sim.schedule sim ~delay:at (fun () ->
        incr docs_published;
        ignore (Net.publish_doc net publishers.(publisher) ~doc_id documents.(doc_id)))
  in
  let horizon_end = ref sub_end in
  (match spec.kind with
  | Flash_crowd ->
    (* Docs land while the crowd arrives: early ones see the thin
       pre-crowd population, late ones the full crowd. *)
    let span = sub_end +. 50.0 -. sub_start in
    for d = 0 to spec.docs - 1 do
      let at = sub_start +. ((float_of_int d +. 0.5) /. float_of_int (max spec.docs 1) *. span) in
      publish_at ~publisher:0 ~at d
    done;
    horizon_end := sub_start +. span
  | Diurnal ->
    (* Publish intervals modulated by a sinusoidal "day": dense at the
       peak, sparse in the trough, [rounds] cycles. *)
    let period = 500.0 in
    let start = sub_end in
    let base = float_of_int spec.rounds *. period /. float_of_int (max spec.docs 1) in
    let t = ref start in
    for d = 0 to spec.docs - 1 do
      publish_at ~publisher:0 ~at:!t d;
      let phase = (!t -. start) /. period in
      t := !t +. (base /. (1.0 +. (0.8 *. sin (2.0 *. Float.pi *. phase))))
    done;
    horizon_end := !t
  | Churn ->
    (* After the initial load, [rounds] waves: wave r drops the clients
       with [i mod rounds = r] (batched), then re-subscribes them half a
       round later with fresh picks. Docs land throughout, so deliveries
       see the population mid-churn. *)
    let churn_per_round = (spec.clients + spec.rounds - 1) / max spec.rounds 1 in
    let churn_batches = (max churn_per_round 1 + spec.batch - 1) / spec.batch in
    let round_len = Float.max 150.0 ((float_of_int churn_batches *. gap *. 2.0) +. 60.0) in
    for r = 0 to spec.rounds - 1 do
      let at = sub_end +. (float_of_int r *. round_len) in
      let in_wave i = i mod spec.rounds = r in
      Sim.schedule sim ~delay:at
        (emit_range ~gap ~start:0 ~stop:spec.clients ~f:(fun i ->
             if in_wave i then begin
               Net.unsubscribe_virtual net ~broker:leaves.(i mod nleaves)
                 { Message.origin = cid0 + i; seq = seqs.(i) };
               incr unsubs_sent
             end));
      Sim.schedule sim ~delay:(at +. (round_len /. 2.0))
        (emit_range ~gap ~start:0 ~stop:spec.clients ~f:(fun i ->
             if in_wave i then subscribe_client i))
    done;
    let churn_end = sub_end +. (float_of_int spec.rounds *. round_len) in
    for d = 0 to spec.docs - 1 do
      let at =
        sub_start
        +. ((float_of_int d +. 0.5) /. float_of_int (max spec.docs 1) *. (churn_end -. sub_start))
      in
      publish_at ~publisher:0 ~at d
    done;
    horizon_end := churn_end
  | Fanout ->
    (* Each channel's feed publishes its share of the docs, spread over
       a broadcast window after the population is in place. *)
    let span = 500.0 in
    for d = 0 to spec.docs - 1 do
      let c = d mod npubs in
      let at =
        sub_end +. ((float_of_int (d / npubs) +. 0.5) /. float_of_int (max 1 ((spec.docs + npubs - 1) / npubs)) *. span)
      in
      publish_at ~publisher:c ~at d
    done;
    horizon_end := sub_end +. span);

  (* Optional deterministic fault plan over the scenario horizon. *)
  (match fault_spec with
  | None -> ()
  | Some fspec ->
    let plan =
      Xroute_fault.Plan.generate ~seed:(spec.seed + 7000)
        ~brokers:(Topology.broker_count topo) ~edges:(Topology.edges topo)
        ~clients:(Array.to_list (Array.map (fun (c : Net.client) -> c.Net.cid) publishers))
        ~spec:fspec ()
    in
    Net.install_plan net plan);

  Net.run net;

  (* Collect before probing: the probe replays publications through the
     brokers and perturbs their counters. *)
  let prt_total = Net.total_prt_size net in
  let srt_total = Net.total_srt_size net in
  let dropped_pubs = Net.dropped_publications net in
  let fl = fault_line (Net.fault_stats net) in
  let events = Sim.executed sim in
  let virtual_ms = Sim.now sim in
  let do_decisions =
    match decisions with Some b -> b | None -> spec.clients <= 20_000
  in
  let decision_lines =
    if do_decisions then probe_decisions net (Array.to_list documents) else []
  in
  let decision_digest =
    Pool.Arena.digest_close
      (List.fold_left string_digest Pool.Arena.digest_empty decision_lines)
      (List.length decision_lines)
  in
  {
    spec;
    queue;
    subs_sent = !subs_sent;
    unsubs_sent = !unsubs_sent;
    docs_published = !docs_published;
    deliveries = !rows;
    events;
    virtual_ms;
    ledger = arena;
    ledger_digest = Pool.Arena.digest_close !digest !rows;
    decisions = decision_lines;
    decision_digest;
    fault_line = fl;
    prt_total;
    srt_total;
    dropped_pubs;
  }

(* Full-row ledger equality (small scale): same rows, same order. *)
let equal_ledgers a b =
  match (a.ledger, b.ledger) with
  | Some la, Some lb ->
    Pool.Arena.length la = Pool.Arena.length lb
    && a.ledger_digest = b.ledger_digest
    &&
    let n = Pool.Arena.length la in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      ok :=
        Pool.Arena.get_a la !i = Pool.Arena.get_a lb !i
        && Pool.Arena.get_b la !i = Pool.Arena.get_b lb !i
        && Pool.Arena.get_time la !i = Pool.Arena.get_time lb !i;
      incr i
    done;
    !ok
  | None, None -> a.ledger_digest = b.ledger_digest && a.deliveries = b.deliveries
  | _ -> false

(* The standing differential: run the spec on both queue backends and
   require byte-identical ledgers (full rows when [`Full]), identical
   decisions and fault accounting. Returns the list of discrepancies
   (empty = gate passes). *)
let differential ?(ledger = `Full) ?fault_spec spec =
  let a = run ~queue:`Heap ~ledger ?fault_spec spec in
  let b = run ~queue:`List ~ledger ?fault_spec spec in
  let diffs = ref [] in
  let check name ok = if not ok then diffs := name :: !diffs in
  check "ledger" (equal_ledgers a b);
  check "deliveries" (a.deliveries = b.deliveries);
  check "subs" (a.subs_sent = b.subs_sent);
  check "unsubs" (a.unsubs_sent = b.unsubs_sent);
  check "decisions" (a.decisions = b.decisions && a.decision_digest = b.decision_digest);
  check "fault_stats" (a.fault_line = b.fault_line);
  check "events" (a.events = b.events);
  check "virtual_ms" (a.virtual_ms = b.virtual_ms);
  (a, b, List.rev !diffs)
