(* Root-to-leaf path enumeration and advertisement generation (Sec. 3.1).

   The DTD induces the set of root-to-leaf element paths a conforming
   document can contain. For a non-recursive DTD this set is finite and
   every path becomes a non-recursive advertisement. For a recursive DTD
   the set is infinite but regular; we generate recursive advertisements
   with [(...)+] groups:

   - DFS over the element graph with each element at most once on the
     stack enumerates the simple root-to-leaf paths;
   - a child edge pointing back into the DFS stack ("back edge" from stack
     position [j] to position [i]) witnesses that the segment
     [stack[i..j]] may repeat, so leaf paths passing through [j] wrap that
     segment in a [(...)+] group. Nested intervals produce the paper's
     embedded-recursive advertisements, disjoint intervals the
     series-recursive ones.

   Limitations (documented in DESIGN.md): when two loop intervals cross
   (i1 < i2 <= j1 < j2) a single advertisement of the paper's shape cannot
   express both; we emit one advertisement per maximal non-crossing
   choice. When an SCC contains two distinct cycles through the same entry
   element, paths alternating between them are not covered by any single
   generated advertisement; [validate] detects such gaps, and the bundled
   sample DTDs avoid them. Elements with ANY content contribute a
   wildcard tail advertisement "prefix(/ star )+". *)

(* ------------------------------------------------------------------ *)
(* Bounded path enumeration                                            *)
(* ------------------------------------------------------------------ *)

(* All root-to-leaf name paths of length <= [max_depth]; cycles are
   unrolled up to the bound. Exponential in [max_depth]: intended for
   tests, oracles and the imperfect-degree universe of small DTDs. *)
let enumerate_paths ?(max_count = max_int) ~max_depth graph =
  let dtd = Dtd_graph.dtd graph in
  let acc = ref [] in
  let count = ref 0 in
  let exception Done in
  let emit path =
    acc := Array.of_list (List.rev path) :: !acc;
    incr count;
    if !count >= max_count then raise Done
  in
  let rec walk name depth rev_path =
    let rev_path = name :: rev_path in
    (match Dtd_ast.find dtd name with
    | Some decl when Dtd_ast.can_be_leaf decl -> emit rev_path
    | Some _ -> ()
    | None -> ());
    if depth < max_depth then
      List.iter (fun child -> walk child (depth + 1) rev_path) (Dtd_graph.children graph name)
  in
  (try walk (Dtd_ast.root dtd) 1 [] with Done -> ());
  List.rev !acc

(* Random root-to-leaf paths by uniform walks, for large DTDs where full
   enumeration blows up. Walks that exceed [max_depth] without reaching a
   leaf-capable element are retried. *)
let sample_paths ~count ~max_depth prng graph =
  let dtd = Dtd_graph.dtd graph in
  let can_leaf name =
    match Dtd_ast.find dtd name with Some d -> Dtd_ast.can_be_leaf d | None -> false
  in
  let rec one_walk () =
    let rec go name depth rev_path =
      let rev_path = name :: rev_path in
      let children = Dtd_graph.children graph name in
      let stop_here =
        can_leaf name && (children = [] || depth >= max_depth || Xroute_support.Prng.bool prng)
      in
      if stop_here then Some (Array.of_list (List.rev rev_path))
      else if children = [] || depth >= max_depth then
        if can_leaf name then Some (Array.of_list (List.rev rev_path)) else None
      else go (Xroute_support.Prng.choose_list prng children) (depth + 1) rev_path
    in
    match go (Dtd_ast.root dtd) 1 [] with Some p -> p | None -> one_walk ()
  in
  List.init count (fun _ -> one_walk ())

(* ------------------------------------------------------------------ *)
(* Advertisement generation                                            *)
(* ------------------------------------------------------------------ *)

(* An interval [(i, j)] means stack positions i..j form a repeatable
   segment (there is a back edge from the element at j to the one at i). *)
type interval = { lo : int; hi : int }

let crosses a b =
  (a.lo < b.lo && b.lo <= a.hi && a.hi < b.hi)
  || (b.lo < a.lo && a.lo <= b.hi && b.hi < a.hi)

(* Maximal pairwise-non-crossing subsets of [intervals] (nesting and
   disjointness allowed). Exponential in the number of crossing pairs,
   which real DTDs keep at zero; capped by [max_choices]. *)
let non_crossing_choices ~max_choices intervals =
  let rec go chosen = function
    | [] -> [ List.rev chosen ]
    | iv :: rest ->
      if List.exists (crosses iv) chosen then
        (* Either drop [iv] or drop the conflicting ones: branch. *)
        go chosen rest
        @ go (iv :: List.filter (fun c -> not (crosses iv c)) chosen) rest
      else go (iv :: chosen) rest
  in
  let choices = go [] intervals in
  (* Keep only maximal subsets, dedup, cap. *)
  let subset a b = List.for_all (fun x -> List.mem x b) a in
  let maximal =
    List.filter (fun c -> not (List.exists (fun c' -> c != c' && subset c c' && not (subset c' c)) choices)) choices
  in
  let dedup =
    List.sort_uniq compare (List.map (List.sort compare) maximal)
  in
  let rec take n = function [] -> [] | x :: r -> if n = 0 then [] else x :: take (n - 1) r in
  take max_choices dedup

(* Build an advertisement from a concrete name path and non-crossing loop
   intervals. *)
let adv_of_path_with_intervals path intervals =
  let n = Array.length path in
  let sym i = Xroute_xpath.Xpe.Name (Xroute_support.Symbol.intern path.(i)) in
  (* Intervals sorted outermost-first: by lo ascending, hi descending. *)
  let sorted = List.sort (fun a b -> if a.lo <> b.lo then compare a.lo b.lo else compare b.hi a.hi) intervals in
  let rec build lo hi intervals =
    match intervals with
    | [] -> if lo > hi then [] else [ Xroute_xpath.Adv.Lit (Array.init (hi - lo + 1) (fun k -> sym (lo + k))) ]
    | iv :: rest ->
      let inside, after = List.partition (fun x -> x.lo >= iv.lo && x.hi <= iv.hi) rest in
      let prefix = if lo > iv.lo - 1 then [] else [ Xroute_xpath.Adv.Lit (Array.init (iv.lo - lo) (fun k -> sym (lo + k))) ] in
      let inside_parts =
        (* the chosen interval itself wraps positions iv.lo..iv.hi *)
        List.filter (fun x -> not (x.lo = iv.lo && x.hi = iv.hi)) inside
      in
      prefix
      @ [ Xroute_xpath.Adv.Group (build iv.lo iv.hi inside_parts) ]
      @ build (iv.hi + 1) hi after
  in
  ignore n;
  Xroute_xpath.Adv.make (build 0 (Array.length path - 1) sorted)

module Adv_set = Set.Make (Xroute_xpath.Adv)

(* Generate the advertisement set of a DTD. *)
let advertisements ?(max_choices = 16) graph =
  let dtd = Dtd_graph.dtd graph in
  let advs = ref Adv_set.empty in
  let add a = advs := Adv_set.add a !advs in
  (* stack grows downward in lists; we track (name, position) plus the
     loop intervals discovered so far on this path. *)
  let rec walk name stack_rev depth intervals on_stack =
    let stack_rev = name :: stack_rev in
    let on_stack = Dtd_ast.String_map.add name depth on_stack in
    let decl = Dtd_ast.find dtd name in
    let is_any = match decl with Some { Dtd_ast.content = Dtd_ast.Any; _ } -> Some () | _ -> None in
    let children = match is_any with Some () -> [] | None -> Dtd_graph.children graph name in
    (* Record back edges from this node. *)
    let intervals =
      List.fold_left
        (fun acc child ->
          match Dtd_ast.String_map.find_opt child on_stack with
          | Some i -> { lo = i; hi = depth } :: acc
          | None -> acc)
        intervals children
    in
    let emit_leaf () =
      let path = Array.of_list (List.rev stack_rev) in
      match intervals with
      | [] -> add (adv_of_path_with_intervals path [])
      | intervals ->
        List.iter
          (fun choice -> add (adv_of_path_with_intervals path choice))
          (non_crossing_choices ~max_choices intervals)
    in
    (match decl with
    | Some d when Dtd_ast.can_be_leaf d -> emit_leaf ()
    | _ -> ());
    (match is_any with
    | Some () ->
      (* ANY content: arbitrary non-empty descendant chains. *)
      let path = Array.of_list (List.rev stack_rev) in
      let base = adv_of_path_with_intervals path [] in
      add (Xroute_xpath.Adv.make (Xroute_xpath.Adv.parts base @ [ Xroute_xpath.Adv.Group [ Xroute_xpath.Adv.Lit [| Xroute_xpath.Xpe.Star |] ] ]))
    | None ->
      List.iter
        (fun child ->
          if not (Dtd_ast.String_map.mem child on_stack) then
            walk child stack_rev (depth + 1) intervals on_stack)
        children)
  in
  walk (Dtd_ast.root dtd) [] 0 [] Dtd_ast.String_map.empty;
  Adv_set.elements !advs

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

(* Paths (up to [max_depth]) not matched by any advertisement; empty on
   DTDs within the supported fragment. *)
let validate ?(max_depth = 10) ?(max_count = 200_000) graph advs =
  enumerate_paths ~max_count ~max_depth graph
  |> List.filter (fun path -> not (List.exists (fun a -> Xroute_xpath.Adv.matches_names a path) advs))

(* Does any advertisement of [advs] match every path of the document? *)
let covers_document graph advs root =
  ignore graph;
  Xroute_xml.Xml_paths.decompose ~doc_id:0 root
  |> List.for_all (fun (p : Xroute_xml.Xml_paths.publication) ->
         List.exists (fun a -> Xroute_xpath.Adv.matches_names a p.steps) advs)
