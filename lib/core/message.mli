(** Protocol messages exchanged between brokers and clients. *)

open Xroute_xpath

(** Globally unique subscription/advertisement identifier: assigned at
    the origin and stable as the message propagates. *)
type sub_id = { origin : int; seq : int }

val compare_sub_id : sub_id -> sub_id -> int

(** Causal trace context carried by publications: the trace id (the
    publication's [doc_id]) and the span id of the hop that sent this
    message. Brokers copy it input → output; the transport rewrites
    [parent_span] per hop. Excluded from {!wire_size} — tracing must not
    perturb the modeled latencies. *)
type trace_ctx = { trace : int; parent_span : int }

type t =
  | Advertise of { id : sub_id; adv : Adv.t }
  | Unadvertise of { id : sub_id }
  | Subscribe of { id : sub_id; xpe : Xpe.t }
  | Unsubscribe of { id : sub_id }
  | Publish of {
      pub : Xroute_xml.Xml_paths.publication;
      trail : sub_id list;
          (** XTreeNet-style optimization: ids of the upstream
              subscriptions this publication matched; the receiver may
              restrict matching to their subtrees. *)
      ctx : trace_ctx option;  (** causal trace context, if traced *)
    }

val pp_sub_id : Format.formatter -> sub_id -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Approximate wire size in bytes, for traffic/transmission modeling. *)
val wire_size : t -> int
