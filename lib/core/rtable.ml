(* Routing tables of a content-based XML router (Sec. 2.1).

   The subscription routing table (SRT) stores <advertisement, last-hop>
   tuples: a subscription is forwarded to the last hops of the
   advertisements it overlaps. The publication routing table (PRT)
   stores <subscription, last-hop> tuples: a publication is forwarded to
   the last hops of the subscriptions it matches. The PRT is a
   {!Sub_tree}, so covering-based compaction and pruned matching come
   from the data structure; disabling covering just plugs in a constant-
   false covering predicate, degrading the tree to a flat list. *)

open Xroute_xpath
module Symbol = Xroute_support.Symbol

type endpoint = Neighbor of int | Client of int

let endpoint_equal a b =
  match (a, b) with
  | Neighbor x, Neighbor y | Client x, Client y -> x = y
  | Neighbor _, Client _ | Client _, Neighbor _ -> false

let pp_endpoint ppf = function
  | Neighbor b -> Format.fprintf ppf "broker:%d" b
  | Client c -> Format.fprintf ppf "client:%d" c

(* ------------------------------------------------------------------ *)
(* Subscription routing table                                          *)
(* ------------------------------------------------------------------ *)

module Srt = struct
  type entry = { id : Message.sub_id; adv : Adv.t; hop : endpoint; seq : int }

  (* Advertisements are absolute patterns, so the first symbol of an
     advertisement is a sound discriminator: a subscription anchored at
     root element [n] can only overlap advertisements rooted at [n] —
     plus the ones whose root is a wildcard or a recursive group, which
     live in a catch-all bucket scanned on every lookup. Buckets keep
     entries newest-first; [seq] restores the global newest-first scan
     order when a lookup spans several buckets, so the indexed table is
     observationally identical to the flat list it replaces (the
     [indexed = false] mode keeps the flat scan alive for differential
     tests and benchmarks). *)
  type t = {
    (* Keyed by the interned root element: bucket routing never hashes
       or compares a string. *)
    buckets : (Symbol.t, entry list) Hashtbl.t;
    mutable catch_all : entry list; (* Star / recursive-rooted advertisements *)
    by_id : (Message.sub_id, entry) Hashtbl.t;
    mutable count : int;
    mutable next_seq : int;
    indexed : bool;
    use_cover : bool; (* advertisement covering (extension) *)
    engine : Adv_match.engine;
    mutable match_ops : int;
    (* Memoized [hops_for_sub]: mass-subscription workloads look the
       same XPE up repeatedly against a table that only changes when an
       advertisement arrives or leaves. A hit charges [match_ops] with
       exactly the ops of the scan it replaces, so the simulated cost
       model is unchanged by the cache. *)
    hops_cache : (string, endpoint list * int) Hashtbl.t;
  }

  let create ?(use_cover = false) ?(engine = Adv_match.Paper) ?(indexed = true) () =
    {
      buckets = Hashtbl.create 64;
      catch_all = [];
      by_id = Hashtbl.create 64;
      count = 0;
      next_seq = 0;
      indexed;
      use_cover;
      engine;
      match_ops = 0;
      hops_cache = Hashtbl.create 64;
    }

  let size t = t.count
  let match_ops t = t.match_ops
  let indexed t = t.indexed

  (* Root element of an advertisement, or [None] for the catch-all
     bucket (wildcard or recursive group at the root). *)
  let bucket_key t adv =
    if not t.indexed then None
    else
      match Adv.parts adv with
      | Adv.Lit arr :: _ when Array.length arr > 0 -> (
        match arr.(0) with Xpe.Name n -> Some n | Xpe.Star -> None)
      | _ -> None

  let bucket t n = Option.value ~default:[] (Hashtbl.find_opt t.buckets n)

  (* Merge two newest-first (seq-descending) entry lists. *)
  let rec merge_desc a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: xs, y :: ys ->
      if x.seq > y.seq then x :: merge_desc xs b else y :: merge_desc a ys

  (* Every entry, newest first — the flat list's scan order. *)
  let all_entries t =
    if Hashtbl.length t.buckets = 0 then t.catch_all
    else
      Hashtbl.fold (fun _ es acc -> List.rev_append es acc) t.buckets t.catch_all
      |> List.sort (fun a b -> compare b.seq a.seq)

  let entries t = all_entries t

  (* Entries whose advertisement can possibly concern root element [n]:
     its bucket plus the catch-all, in global newest-first order. *)
  let candidates_for_root t n = merge_desc (bucket t n) t.catch_all

  let mem t id = Hashtbl.mem t.by_id id

  (* Store an advertisement. With advertisement covering enabled, an
     entry covered by an existing same-hop advertisement is redundant:
     subscriptions overlapping it also overlap the coverer and are routed
     to the same hop. A coverer admits every path of the covered
     advertisement, so it shares the covered one's root bucket or sits in
     the catch-all. Returns [`Stored]/[`Covered of coverer_id]. *)
  let add t id adv hop =
    if mem t id then `Duplicate
    else begin
      let key = bucket_key t adv in
      let coverer =
        if not t.use_cover then None
        else
          let among =
            match key with
            | Some n -> candidates_for_root t n
            | None -> all_entries t
          in
          List.find_opt
            (fun e -> endpoint_equal e.hop hop && Cover.adv_covers e.adv adv)
            among
      in
      match coverer with
      | Some e -> `Covered e.id
      | None ->
        let entry = { id; adv; hop; seq = t.next_seq } in
        t.next_seq <- t.next_seq + 1;
        (match key with
        | Some n -> Hashtbl.replace t.buckets n (entry :: bucket t n)
        | None -> t.catch_all <- entry :: t.catch_all);
        Hashtbl.replace t.by_id id entry;
        t.count <- t.count + 1;
        Hashtbl.reset t.hops_cache;
        `Stored
    end

  let remove t id =
    match Hashtbl.find_opt t.by_id id with
    | None -> None
    | Some entry ->
      Hashtbl.remove t.by_id id;
      t.count <- t.count - 1;
      let drop es = List.filter (fun e -> e.seq <> entry.seq) es in
      (match bucket_key t entry.adv with
      | Some n -> (
        match drop (bucket t n) with
        | [] -> Hashtbl.remove t.buckets n
        | es -> Hashtbl.replace t.buckets n es)
      | None -> t.catch_all <- drop t.catch_all);
      Hashtbl.reset t.hops_cache;
      Some entry.hop

  (* Root element a subscription's matches are anchored at, if any: an
     absolute XPE whose first step is [/name]. Anything else (relative,
     leading [//], leading wildcard) can match under any root. *)
  let sub_root xpe =
    match Xpe.semantic_steps xpe with
    | { Xpe.axis = Xpe.Child; test = Xpe.Name n; _ } :: _ -> Some n
    | _ -> None

  (* Entries the subscription has to be checked against; only these are
     charged to [match_ops], which is how the bench shows scans avoided. *)
  let scan_candidates t xpe =
    if not t.indexed then t.catch_all
    else
      match sub_root xpe with
      | Some n -> candidates_for_root t n
      | None -> all_entries t

  (* First-occurrence order-preserving dedup under the scan order. *)
  let dedup_hops hops =
    List.rev
      (List.fold_left
         (fun acc h -> if List.exists (endpoint_equal h) acc then acc else h :: acc)
         [] hops)

  (* Last hops of the advertisements overlapping the subscription. *)
  let hops_for_sub t xpe =
    let key = Xpe.to_string xpe in
    match Hashtbl.find_opt t.hops_cache key with
    | Some (hops, ops) ->
      t.match_ops <- t.match_ops + ops;
      hops
    | None ->
      let ops0 = t.match_ops in
      let hops =
        List.filter_map
          (fun e ->
            t.match_ops <- t.match_ops + 1;
            if Adv_match.overlaps ~engine:t.engine xpe e.adv then Some e.hop else None)
          (scan_candidates t xpe)
      in
      let hops = dedup_hops hops in
      Hashtbl.add t.hops_cache key (hops, t.match_ops - ops0);
      hops

  (* Advertisements (ids) from a given hop. *)
  let ids_from t hop =
    List.filter_map
      (fun e -> if endpoint_equal e.hop hop then Some e.id else None)
      (all_entries t)

  (* Index shape, for the observability gauges. *)
  let bucket_count t = Hashtbl.length t.buckets
  let catch_all_size t = List.length t.catch_all

  let max_bucket_size t =
    Hashtbl.fold (fun _ es acc -> max acc (List.length es)) t.buckets 0

  (* Structural invariants of the index (see Check.audit_broker): the
     bucket partition, the by-id map and the counters must agree, every
     bucket must be keyed by its entries' root element and kept strictly
     newest-first, and no stored seq may reach [next_seq]. *)
  let check_invariants t =
    let problems = ref [] in
    let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
    let listed = all_entries t in
    if List.length listed <> t.count then
      add "SRT size %d disagrees with stored entries %d" t.count (List.length listed);
    if Hashtbl.length t.by_id <> t.count then
      add "SRT by-id map holds %d entries, size says %d" (Hashtbl.length t.by_id) t.count;
    List.iter
      (fun e ->
        (match Hashtbl.find_opt t.by_id e.id with
        | None -> add "SRT entry (%d,%d) missing from the by-id map" e.id.origin e.id.seq
        | Some e' ->
          if e'.seq <> e.seq then
            add "SRT entry (%d,%d) stored twice with seq %d and %d" e.id.origin e.id.seq
              e.seq e'.seq);
        if e.seq < 0 || e.seq >= t.next_seq then
          add "SRT entry (%d,%d) has seq %d outside [0,%d)" e.id.origin e.id.seq e.seq
            t.next_seq)
      listed;
    let check_order where es =
      let rec go = function
        | a :: (b :: _ as rest) ->
          if a.seq <= b.seq then
            add "SRT %s not strictly newest-first: seq %d before %d" where a.seq b.seq;
          go rest
        | _ -> ()
      in
      go es
    in
    Hashtbl.iter
      (fun name es ->
        if es = [] then add "SRT keeps an empty bucket %S" (Symbol.name name);
        check_order (Printf.sprintf "bucket %S" (Symbol.name name)) es;
        List.iter
          (fun e ->
            match bucket_key t e.adv with
            | Some k when Symbol.equal k name -> ()
            | Some k ->
              add "SRT entry (%d,%d) filed under %S, belongs in %S" e.id.origin e.id.seq
                (Symbol.name name) (Symbol.name k)
            | None ->
              add "SRT entry (%d,%d) filed under %S, belongs in the catch-all" e.id.origin
                e.id.seq (Symbol.name name))
          es)
      t.buckets;
    check_order "catch-all" t.catch_all;
    List.iter
      (fun e ->
        match bucket_key t e.adv with
        | None -> ()
        | Some k ->
          add "SRT entry (%d,%d) in the catch-all, belongs in bucket %S" e.id.origin
            e.id.seq (Symbol.name k))
      t.catch_all;
    if (not t.indexed) && Hashtbl.length t.buckets > 0 then
      add "flat SRT has %d root-element buckets" (Hashtbl.length t.buckets);
    List.rev !problems
end

(* ------------------------------------------------------------------ *)
(* Publication routing table                                           *)
(* ------------------------------------------------------------------ *)

module Prt = struct
  type payload = { id : Message.sub_id; hop : endpoint }

  type match_engine = Tree | Nfa

  let match_engine_to_string = function Tree -> "tree" | Nfa -> "nfa"

  let match_engine_of_string = function
    | "tree" -> Some Tree
    | "nfa" -> Some Nfa
    | _ -> None

  module Id_map = Map.Make (struct
    type t = Message.sub_id

    let compare = Message.compare_sub_id
  end)

  type t = {
    tree : payload Sub_tree.t;
    (* The YFilter automaton over the same subscription set. Entries
       carry an insertion sequence number so NFA match results can be
       reported in a deterministic (insertion) order, independent of
       hash-table iteration. Both structures hold the same physical
       payload records, so removal can select by physical equality and
       the audit can cross-check them. The automaton is maintained under
       both engines: switching engines is O(1) and the integrity audit
       always has both sides to compare. *)
    nfa : (int * payload) Yfilter.t;
    mutable nfa_seq : int;
    engine : match_engine;
    mutable by_id : (payload Sub_tree.node * payload) Id_map.t;
  }

  (* The NFA is the primary engine: per-publication cost grows with the
     automaton's branching into the publication, not with the table
     size. [~engine:Tree] is the opt-out for differential testing,
     exactly as [Srt.create ~indexed:false] opts out of the bucket
     index. *)
  let create ?flat ?covers ?(engine = Nfa) () =
    {
      tree = Sub_tree.create ?flat ?covers ();
      nfa = Yfilter.create ();
      nfa_seq = 0;
      engine;
      by_id = Id_map.empty;
    }

  let size t = Sub_tree.size t.tree
  let tree t = t.tree
  let engine t = t.engine
  let nfa_states t = Yfilter.state_count t.nfa
  let nfa_match_ops t = Yfilter.match_ops t.nfa
  let mem t id = Id_map.mem id t.by_id
  let find t id = Id_map.find_opt id t.by_id

  (* Is a new subscription covered by a stored one? (Checked before
     insertion; equality counts as covered.) *)
  let is_covered t xpe = Sub_tree.is_covered t.tree xpe

  (* Maximal stored subscriptions covered by [xpe] — the ones whose
     forwarding becomes redundant when [xpe] is forwarded. *)
  let covered_maximal t xpe =
    Sub_tree.covered_roots t.tree xpe
    |> List.concat_map (fun node ->
           List.map (fun p -> (node, p)) (Sub_tree.node_payloads node))

  let insert t id xpe hop =
    let payload = { id; hop } in
    let node = Sub_tree.insert t.tree xpe payload in
    Yfilter.insert t.nfa xpe (t.nfa_seq, payload);
    t.nfa_seq <- t.nfa_seq + 1;
    t.by_id <- Id_map.add id (node, payload) t.by_id;
    (node, payload)

  let remove t id =
    match Id_map.find_opt id t.by_id with
    | None -> None
    | Some (node, payload) ->
      let was_maximal = List.exists (fun n -> n == node) (Sub_tree.maximal t.tree) in
      let children = Sub_tree.node_children node in
      let last_payload = match Sub_tree.node_payloads node with [ _ ] -> true | _ -> false in
      (* The node knows the exact XPE, so the automaton trail to unwind
         is known; the payload is selected by physical equality (the
         same record was stored at insertion). *)
      Yfilter.remove t.nfa (Sub_tree.node_xpe node) (fun (_, p) -> p == payload);
      Sub_tree.remove_payload t.tree node payload;
      t.by_id <- Id_map.remove id t.by_id;
      Some (payload, node, was_maximal && last_payload, children)

  (* Publication matching: endpoints of matching subscriptions. Both
     engines return the same payload set (gated by the differential
     harness); the NFA reports in insertion order, the tree in covering
     DFS order. *)
  let match_pub t (pub : Xroute_xml.Xml_paths.publication) =
    match t.engine with
    | Tree -> Sub_tree.match_syms t.tree pub.syms pub.attrs
    | Nfa ->
      Yfilter.match_syms t.nfa pub.syms pub.attrs
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> List.map snd

  (* Matching restricted to the subtrees of the given subscription ids
     (trail routing): sound because a publication failing a node cannot
     match anything the node covers. *)
  let match_pub_from t ids (pub : Xroute_xml.Xml_paths.publication) =
    let acc = ref [] in
    let rec go node =
      if Xpe_eval.matches_syms (Sub_tree.node_xpe node) pub.syms pub.attrs then begin
        acc := List.rev_append (Sub_tree.node_payloads node) !acc;
        List.iter go (Sub_tree.node_children node)
      end
    in
    List.iter
      (fun id -> match Id_map.find_opt id t.by_id with Some (node, _) -> go node | None -> ())
      ids;
    List.rev !acc

  let match_checks t = Sub_tree.match_checks t.tree + Yfilter.match_ops t.nfa
  let cover_checks t = Sub_tree.cover_checks t.tree

  (* Total stored payloads ([size] counts distinct XPEs). *)
  let payload_count t = Sub_tree.payload_count t.tree

  (* ------------------------------------------------------------------ *)
  (* NFA integrity audit                                                 *)
  (* ------------------------------------------------------------------ *)

  (* The automaton and the id ledger must describe the same subscription
     set: every accepting entry holds the physically-same payload record
     the ledger holds, under the XPE the ledger's node stores, with a
     unique sequence number; and the automaton's structural invariants
     (no dead states after churn, exact counters) hold. *)
  let nfa_invariants t =
    let problems = ref [] in
    let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
    List.iter (fun msg -> problems := msg :: !problems) (Yfilter.check_invariants t.nfa);
    let entries = Yfilter.to_list t.nfa in
    let ledger = payload_count t in
    let stored = Yfilter.size t.nfa in
    if stored <> ledger then add "NFA stores %d payloads, PRT ledger holds %d" stored ledger;
    let seqs = Hashtbl.create 16 in
    List.iter
      (fun (xpe, (seq, (payload : payload))) ->
        if seq < 0 || seq >= t.nfa_seq then
          add "NFA entry (%d,%d) carries out-of-range seq %d" payload.id.origin
            payload.id.seq seq;
        if Hashtbl.mem seqs seq then
          add "NFA entries share seq %d" seq
        else Hashtbl.add seqs seq ();
        match Id_map.find_opt payload.id t.by_id with
        | None ->
          add "NFA holds subscription (%d,%d) absent from the PRT ledger" payload.id.origin
            payload.id.seq
        | Some (node, ledger_payload) ->
          if not (ledger_payload == payload) then
            add "NFA payload for (%d,%d) is not the ledger's record" payload.id.origin
              payload.id.seq;
          if not (Xpe.equal (Sub_tree.node_xpe node) xpe) then
            add "NFA files (%d,%d) under %s, ledger under %s" payload.id.origin
              payload.id.seq (Xpe.to_string xpe)
              (Xpe.to_string (Sub_tree.node_xpe node)))
      entries;
    List.rev !problems

  (* Test hook: corrupt the automaton with a state eager pruning could
     never leave behind — the audit's must-fail mutation. *)
  let plant_nfa_orphan t = Yfilter.plant_orphan t.nfa

  (* ------------------------------------------------------------------ *)
  (* Shard: a single-owner slice of the PRT for the domain pool          *)
  (* ------------------------------------------------------------------ *)

  (* One shard holds the subscriptions anchored at the advertisement
     roots it owns, plus a replica of every unanchored subscription
     (relative / leading-[//] / wildcard XPEs, which can match under any
     root). Mutations and matching happen only on the owning worker
     domain; entries carry an explicit [stamp] — the daemon's global
     line sequence number — so per-shard match results sort into exactly
     the order the full table's [nfa_seq] would give (both are monotone
     over the same arrival order of inserted subscriptions), which is
     what keeps pooled routing byte-identical to the sequential engine.
     The observability counters are [Atomic.t] so the main domain can
     export per-shard gauges without a data race. *)
  module Shard = struct
    type nonrec t = {
      nfa : (int * payload) Yfilter.t;
      by_id : (Message.sub_id, Xroute_xpath.Xpe.t) Hashtbl.t;
      entries : int Atomic.t; (* stored subscriptions *)
      pubs : int Atomic.t; (* publications matched on this shard *)
      ops : int Atomic.t; (* cumulative automaton entries examined *)
    }

    let create () =
      {
        nfa = Yfilter.create ();
        by_id = Hashtbl.create 64;
        entries = Atomic.make 0;
        pubs = Atomic.make 0;
        ops = Atomic.make 0;
      }

    let size t = Atomic.get t.entries
    let pubs_matched t = Atomic.get t.pubs
    let match_ops t = Atomic.get t.ops

    let insert t ~stamp id xpe hop =
      if not (Hashtbl.mem t.by_id id) then begin
        Yfilter.insert t.nfa xpe (stamp, { id; hop });
        Hashtbl.replace t.by_id id xpe;
        Atomic.incr t.entries
      end

    let remove t id =
      match Hashtbl.find_opt t.by_id id with
      | None -> ()
      | Some xpe ->
        Yfilter.remove t.nfa xpe (fun (_, p) -> Message.compare_sub_id p.id id = 0);
        Hashtbl.remove t.by_id id;
        Atomic.set t.entries (Atomic.get t.entries - 1)

    (* Stamp-ordered matching — the shard-local mirror of the Nfa branch
       of [match_pub]. Returns the examined-entry count alongside the
       payloads so the pool can feed the match-ops histogram. *)
    let match_pub t (pub : Xroute_xml.Xml_paths.publication) =
      let before = Yfilter.match_ops t.nfa in
      let payloads =
        Yfilter.match_syms t.nfa pub.syms pub.attrs
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        |> List.map snd
      in
      let examined = Yfilter.match_ops t.nfa - before in
      Atomic.incr t.pubs;
      ignore (Atomic.fetch_and_add t.ops examined);
      (payloads, examined)

    (* (id, stamp) pairs stored here — the audit's raw material. Only
       meaningful at quiescence (the owning worker must be idle). *)
    let entries t =
      List.map (fun (_, (stamp, p)) -> (p.id, stamp)) (Yfilter.to_list t.nfa)

    (* Must-fail mutation hook: silently drop one entry from the
       automaton while keeping the ledger, breaking shard integrity. *)
    let corrupt_for_test t =
      match Yfilter.to_list t.nfa with
      | (xpe, (_, p)) :: _ ->
        Yfilter.remove t.nfa xpe (fun (_, q) -> q == p);
        Hashtbl.remove t.by_id p.id
      | [] -> ()
  end
end
