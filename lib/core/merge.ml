(* Merging of XPEs (Sec. 4.3 of the paper).

   Subscriptions with no covering relation can be replaced by a more
   general "merger" covering their union, shrinking the forwarded routing
   state at the price of false positives inside the network. Rules:

   - Rule 1: one differing node test         -> wildcard at that step;
   - Rule 2: a differing test and a
             differing operator              -> wildcard + [//];
   - Rule 3: equal prefix and suffix,
             arbitrary differing middles     -> prefix [//] suffix.

   The imperfect degree of a merger m over originals s1..sn is
   |P(m) - ∪P(si)| / |P(m)| measured against a path universe derived
   from the publisher's DTD (the paper assumes brokers know the DTD).
   Degree 0 means a perfect merger: no false positives.

   Candidate discovery is hash-based so that merging scales to the
   paper's 100k-subscription tables: each XPE is bucketed under keys with
   one step blanked (rule 1), a test and an operator blanked (rule 2), or
   only a prefix/suffix kept (rule 3); buckets of size >= 2 yield
   candidates. Every candidate is verified to cover its originals with
   the exact containment oracle before being offered. *)

open Xroute_xpath

type merger = {
  xpe : Xpe.t;  (* the merged subscription *)
  originals : Xpe.t list;  (* pairwise distinct, all covered by [xpe] *)
  degree : float;  (* imperfect degree over the universe supplied *)
}

(* ------------------------------------------------------------------ *)
(* Imperfect degree                                                    *)
(* ------------------------------------------------------------------ *)

(* |P(m) - ∪P(si)| / |P(m)| over the given finite universe of paths.
   Returns 0 when the merger matches nothing in the universe (an empty
   estimate is treated as perfect; callers supply representative
   universes). *)
let imperfect_degree ~universe merger_xpe originals =
  let matched = ref 0 and extra = ref 0 in
  List.iter
    (fun path ->
      if Xpe_eval.matches_names merger_xpe path then begin
        incr matched;
        if not (List.exists (fun s -> Xpe_eval.matches_names s path) originals) then incr extra
      end)
    universe;
  if !matched = 0 then 0.0 else float_of_int !extra /. float_of_int !matched

(* ------------------------------------------------------------------ *)
(* Candidate discovery                                                 *)
(* ------------------------------------------------------------------ *)

(* Canonical string for a step, with holes. *)
let step_key (s : Xpe.step) =
  let axis = match s.axis with Xpe.Child -> "/" | Xpe.Desc -> "//" in
  let test = Xpe.test_to_string s.test in
  let preds = String.concat "" (List.map Xpe.pred_to_string s.preds) in
  axis ^ test ^ preds

let xpe_key_blanking xpe ~blank_test ~blank_axis =
  let prefix = if Xpe.is_relative xpe then "rel:" else "abs:" in
  prefix
  ^ String.concat ";"
      (List.mapi
         (fun i (s : Xpe.step) ->
           let axis =
             if Some i = blank_axis then "?" else match s.axis with Xpe.Child -> "/" | Xpe.Desc -> "//"
           in
           let test =
             if Some i = blank_test then "?"
             else Xpe.test_to_string s.test
           in
           let preds = String.concat "" (List.map Xpe.pred_to_string s.preds) in
           axis ^ test ^ preds)
         xpe.Xpe.steps)

(* Build the merged XPE for a bucket: blanked test becomes a wildcard,
   blanked axis becomes [//] (unless every member agrees). First-step
   axis of a relative XPE stays Child by construction. *)
let merged_of_bucket ~blank_test ~blank_axis members =
  match members with
  | [] | [ _ ] -> None
  | first :: _ ->
    let steps =
      List.mapi
        (fun i (s : Xpe.step) ->
          let s = if Some i = blank_test then { s with Xpe.test = Xpe.Star; preds = [] } else s in
          let s =
            if Some i = blank_axis && i > 0 then { s with Xpe.axis = Xpe.Desc } else s
          in
          s)
        first.Xpe.steps
    in
    (try Some (Xpe.make ~relative:(Xpe.is_relative first) steps) with Invalid_argument _ -> None)

module Xpe_set = Set.Make (Xpe)

(* Rule 1 and rule 2 candidates via blanking keys. *)
let blanking_candidates xpes =
  let table : (string, Xpe.t list) Hashtbl.t = Hashtbl.create 1024 in
  let add key xpe =
    let existing = Option.value ~default:[] (Hashtbl.find_opt table key) in
    Hashtbl.replace table key (xpe :: existing)
  in
  List.iter
    (fun xpe ->
      let len = Xpe.length xpe in
      for i = 0 to len - 1 do
        add (Printf.sprintf "t%d|%s" i (xpe_key_blanking xpe ~blank_test:(Some i) ~blank_axis:None)) xpe;
        for j = 1 to len - 1 do
          add
            (Printf.sprintf "t%da%d|%s" i j
               (xpe_key_blanking xpe ~blank_test:(Some i) ~blank_axis:(Some j)))
            xpe
        done
      done)
    xpes;
  Hashtbl.fold
    (fun key members acc ->
      let distinct = Xpe_set.elements (Xpe_set.of_list members) in
      if List.length distinct < 2 then acc
      else begin
        (* Recover the blanked positions from the key. *)
        let blank_test, blank_axis =
          try Scanf.sscanf key "t%da%d|" (fun i j -> (Some i, Some j))
          with Scanf.Scan_failure _ | Failure _ | End_of_file -> (
            try Scanf.sscanf key "t%d|" (fun i -> (Some i, None))
            with Scanf.Scan_failure _ | Failure _ | End_of_file -> (None, None))
        in
        match merged_of_bucket ~blank_test ~blank_axis distinct with
        | Some merged when not (List.exists (Xpe.equal merged) distinct) ->
          (merged, distinct) :: acc
        | _ -> acc
      end)
    table []

(* Rule 3 candidates: bucket by (prefix, suffix) around a blanked-out
   middle; the merger replaces the middle with a descendant operator. *)
let rule3_candidates xpes =
  let table : (string, Xpe.t list) Hashtbl.t = Hashtbl.create 1024 in
  let add key xpe =
    let existing = Option.value ~default:[] (Hashtbl.find_opt table key) in
    Hashtbl.replace table key (xpe :: existing)
  in
  List.iter
    (fun xpe ->
      let steps = Array.of_list xpe.Xpe.steps in
      let len = Array.length steps in
      (* prefix length p >= 1, suffix length s >= 1, middle >= 1 *)
      for p = 1 to len - 2 do
        for s = 1 to len - 1 - p do
          let prefix = Array.sub steps 0 p and suffix = Array.sub steps (len - s) s in
          let key =
            Printf.sprintf "p%d-s%d|%s|%s|%s" p s
              (if Xpe.is_relative xpe then "rel" else "abs")
              (String.concat ";" (Array.to_list (Array.map step_key prefix)))
              (String.concat ";" (Array.to_list (Array.map step_key suffix)))
          in
          add key xpe
        done
      done)
    xpes;
  Hashtbl.fold
    (fun _key members acc ->
      let distinct = Xpe_set.elements (Xpe_set.of_list members) in
      if List.length distinct < 2 then acc
      else begin
        match distinct with
        | first :: _ -> (
          (* The bucket guarantees a shared prefix and suffix; recompute
             the longest common ones over the whole bucket directly. *)
          let steps_of x = Array.of_list x.Xpe.steps in
          let arrays = List.map steps_of distinct in
          let minlen = List.fold_left (fun m a -> min m (Array.length a)) max_int arrays in
          let common_prefix =
            let rec go i =
              if i >= minlen - 1 then i
              else if
                List.for_all
                  (fun a -> Xpe.compare_step a.(i) (List.hd arrays).(i) = 0)
                  arrays
              then go (i + 1)
              else i
            in
            go 0
          in
          let common_suffix =
            let rec go s =
              if s >= minlen - common_prefix then s
              else if
                List.for_all
                  (fun a ->
                    Xpe.compare_step
                      a.(Array.length a - 1 - s)
                      (let h = List.hd arrays in
                       h.(Array.length h - 1 - s))
                      = 0)
                  arrays
              then go (s + 1)
              else s
            in
            go 0
          in
          if common_prefix < 1 || common_suffix < 1 then acc
          else begin
            let fsteps = steps_of first in
            let prefix = Array.to_list (Array.sub fsteps 0 common_prefix) in
            let suffix =
              Array.to_list (Array.sub fsteps (Array.length fsteps - common_suffix) common_suffix)
            in
            let suffix =
              match suffix with
              | s0 :: rest -> { s0 with Xpe.axis = Xpe.Desc } :: rest
              | [] -> []
            in
            match
              try Some (Xpe.make ~relative:(Xpe.is_relative first) (prefix @ suffix))
              with Invalid_argument _ -> None
            with
            | Some merged when not (List.exists (Xpe.equal merged) distinct) ->
              (merged, distinct) :: acc
            | _ -> acc
          end)
        | [] -> acc
      end)
    table []

(* All verified candidates: mergers that provably cover each original. *)
let candidates ?(enable_rule3 = true) xpes =
  let raw = blanking_candidates xpes @ (if enable_rule3 then rule3_candidates xpes else []) in
  (* Dedup by merger, fuse original sets. *)
  let table : (string, Xpe.t * Xpe_set.t) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (merged, originals) ->
      let key = Xpe.to_string merged in
      let merged, set =
        match Hashtbl.find_opt table key with
        | Some (m, set) -> (m, set)
        | None -> (merged, Xpe_set.empty)
      in
      Hashtbl.replace table key (merged, Xpe_set.union set (Xpe_set.of_list originals)))
    raw;
  Hashtbl.fold
    (fun _ (merged, set) acc ->
      let originals = Xpe_set.elements set in
      if List.for_all (fun s -> Cover.covers ~engine:Cover.Exact merged s) originals then
        (merged, originals) :: acc
      else acc)
    table []

(* ------------------------------------------------------------------ *)
(* Merging a subscription set                                          *)
(* ------------------------------------------------------------------ *)

(* Greedily apply candidates whose imperfect degree is within
   [max_degree]; each original is consumed by at most one merger.
   Returns the applied mergers and the surviving unmerged XPEs. *)
let merge_set ?(enable_rule3 = true) ~max_degree ~universe xpes =
  let cands = candidates ~enable_rule3 xpes in
  let evaluated =
    List.filter_map
      (fun (merged, originals) ->
        let degree = imperfect_degree ~universe merged originals in
        if degree <= max_degree +. 1e-12 then Some { xpe = merged; originals; degree } else None)
      cands
  in
  (* Prefer mergers absorbing more subscriptions, then lower degree,
     then the most specific pattern (fewest // and * introduced). *)
  let generality m =
    List.fold_left
      (fun acc (s : Xpe.step) ->
        acc
        + (match s.axis with Xpe.Desc -> 2 | Xpe.Child -> 0)
        + (match s.test with Xpe.Star -> 1 | Xpe.Name _ -> 0))
      0 m.Xpe.steps
  in
  let sorted =
    List.sort
      (fun a b ->
        match compare (List.length b.originals) (List.length a.originals) with
        | 0 -> (
          match compare a.degree b.degree with
          | 0 -> compare (generality a.xpe) (generality b.xpe)
          | c -> c)
        | c -> c)
      evaluated
  in
  let consumed = Hashtbl.create 256 in
  let applied =
    List.filter_map
      (fun m ->
        let free = List.filter (fun s -> not (Hashtbl.mem consumed (Xpe.to_string s))) m.originals in
        if List.length free >= 2 then begin
          List.iter (fun s -> Hashtbl.replace consumed (Xpe.to_string s) ()) free;
          Some { m with originals = free }
        end
        else None)
      sorted
  in
  let kept = List.filter (fun s -> not (Hashtbl.mem consumed (Xpe.to_string s))) xpes in
  (applied, kept)
