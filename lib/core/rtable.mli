(** Routing tables of a content-based XML router (Sec. 2.1): the
    subscription routing table (SRT) maps advertisements to last hops;
    the publication routing table (PRT) maps subscriptions to last hops
    and is backed by the covering {!Sub_tree}. *)

open Xroute_xpath

(** A routing next/last hop: a neighbor broker or a local client. *)
type endpoint = Neighbor of int | Client of int

val endpoint_equal : endpoint -> endpoint -> bool
val pp_endpoint : Format.formatter -> endpoint -> unit

module Srt : sig
  type entry = {
    id : Message.sub_id;
    adv : Adv.t;
    hop : endpoint;
    seq : int;  (** insertion sequence; scans run newest (highest) first *)
  }

  type t

  (** [create ~use_cover ~engine ~indexed ()] — [use_cover] enables
      advertisement covering (same-hop covered advertisements are
      suppressed). [indexed] (default) buckets entries by the
      advertisement's root element so a rooted subscription only scans
      its own bucket plus the wildcard/recursive catch-all;
      [~indexed:false] keeps the flat list scan, for differential tests
      and benchmarks. Both modes produce identical routing decisions. *)
  val create : ?use_cover:bool -> ?engine:Adv_match.engine -> ?indexed:bool -> unit -> t

  val size : t -> int

  (** Matching operations performed so far (metrics). Only entries
      actually scanned are charged, so the root-element index makes this
      grow sub-linearly in the table size for rooted subscriptions. *)
  val match_ops : t -> int

  val indexed : t -> bool

  (** All entries, newest first (the scan order of the flat mode). *)
  val entries : t -> entry list

  val mem : t -> Message.sub_id -> bool

  (** Number of non-empty root-element buckets (0 in flat mode). *)
  val bucket_count : t -> int

  (** Entries in the always-scanned wildcard/recursive catch-all bucket
      (in flat mode: every entry). *)
  val catch_all_size : t -> int

  (** Occupancy of the fullest root-element bucket. *)
  val max_bucket_size : t -> int

  (** Store an advertisement; [`Covered id] means a same-hop coverer
      makes it redundant, [`Duplicate] that the id is already stored. *)
  val add :
    t -> Message.sub_id -> Adv.t -> endpoint -> [ `Stored | `Covered of Message.sub_id | `Duplicate ]

  (** Remove by id, returning the stored hop. *)
  val remove : t -> Message.sub_id -> endpoint option

  (** Last hops of the advertisements overlapping a subscription —
      where the subscription must be forwarded. Deduplicated preserving
      first occurrence in scan (newest-first) order. *)
  val hops_for_sub : t -> Xpe.t -> endpoint list

  (** Advertisement ids stored from a given hop. *)
  val ids_from : t -> endpoint -> Message.sub_id list

  (** Root element a subscription's matches are anchored at ([/name]
      first step), or [None] when it can match under any root (relative,
      leading [//], leading wildcard). This is the discriminator behind
      the bucket index — and the partition key of the domain-pool
      shards: an anchored subscription lives only on the shard owning
      its root, an unanchored one is replicated to every shard. *)
  val sub_root : Xpe.t -> Xroute_support.Symbol.t option

  (** Structural invariant violations of the bucket index — partition /
      by-id / counter agreement, per-bucket newest-first (strictly
      seq-descending) order, seq bounds. Empty when healthy. *)
  val check_invariants : t -> string list
end

module Prt : sig
  type payload = { id : Message.sub_id; hop : endpoint }

  (** Which structure answers {!match_pub}: the covering tree (pruned
      DFS, the paper engine) or the shared-prefix NFA ({!Yfilter},
      per-publication cost independent of table size). Both are
      maintained at all times; decisions are gated to be identical. *)
  type match_engine = Tree | Nfa

  val match_engine_to_string : match_engine -> string
  val match_engine_of_string : string -> match_engine option

  module Id_map : Map.S with type key = Message.sub_id

  type t

  (** [engine] selects the matching structure; the NFA is the default
      (primary) engine, [~engine:Tree] is the differential-testing
      opt-out. *)
  val create :
    ?flat:bool -> ?covers:(Xpe.t -> Xpe.t -> bool) -> ?engine:match_engine -> unit -> t

  val size : t -> int
  val tree : t -> payload Sub_tree.t
  val engine : t -> match_engine

  (** Live automaton states (walked, see {!Yfilter.state_count}). *)
  val nfa_states : t -> int

  (** Cumulative automaton matching work (see {!Yfilter.match_ops}). *)
  val nfa_match_ops : t -> int
  val mem : t -> Message.sub_id -> bool
  val find : t -> Message.sub_id -> (payload Sub_tree.node * payload) option

  (** Is the XPE covered by a stored subscription? *)
  val is_covered : t -> Xpe.t -> bool

  (** Maximal stored subscriptions covered by the XPE, with their
      payloads. *)
  val covered_maximal : t -> Xpe.t -> (payload Sub_tree.node * payload) list

  val insert : t -> Message.sub_id -> Xpe.t -> endpoint -> payload Sub_tree.node * payload

  (** Remove by id; returns [(payload, node, node_removed_from_maximal,
      promoted_children)]. *)
  val remove :
    t ->
    Message.sub_id ->
    (payload * payload Sub_tree.node * bool * payload Sub_tree.node list) option

  (** Payloads of subscriptions matching a publication. *)
  val match_pub : t -> Xroute_xml.Xml_paths.publication -> payload list

  (** Matching restricted to the subtrees of the given ids (trail
      routing); sound by the covering-pruning argument. *)
  val match_pub_from : t -> Message.sub_id list -> Xroute_xml.Xml_paths.publication -> payload list

  val match_checks : t -> int
  val cover_checks : t -> int

  (** Total stored payloads ({!size} counts distinct XPEs). *)
  val payload_count : t -> int

  (** Violations of the automaton/ledger agreement (empty when healthy):
      structural NFA invariants, payload identity, XPE agreement, seq
      uniqueness, and size agreement with the ledger. *)
  val nfa_invariants : t -> string list

  (** Test hook: corrupt the automaton with a dead state, which
      {!nfa_invariants} must report — the audit's must-fail mutation. *)
  val plant_nfa_orphan : t -> unit

  (** A single-owner slice of the PRT for the domain pool: the
      YFilter automaton restricted to the subscriptions anchored at the
      advertisement roots the owning shard covers, plus replicas of
      every unanchored subscription. All mutation and matching happens
      on the owning worker domain; entries carry the daemon's global
      arrival sequence as an explicit stamp so the merged results
      reproduce the sequential engine's insertion order exactly. *)
  module Shard : sig
    type t

    val create : unit -> t

    (** Stored subscriptions / publications matched / automaton entries
        examined — [Atomic]-backed so the main domain can export
        per-shard gauges concurrently with matching. *)
    val size : t -> int

    val pubs_matched : t -> int
    val match_ops : t -> int

    (** [insert t ~stamp id xpe hop] — idempotent per id; [stamp] is the
        global arrival sequence of the subscribing line. *)
    val insert : t -> stamp:int -> Message.sub_id -> Xpe.t -> endpoint -> unit

    val remove : t -> Message.sub_id -> unit

    (** Matching payloads in ascending stamp order, plus the number of
        automaton entries examined for this publication. *)
    val match_pub : t -> Xroute_xml.Xml_paths.publication -> payload list * int

    (** [(id, stamp)] pairs stored here; call only at quiescence. *)
    val entries : t -> (Message.sub_id * int) list

    (** Must-fail mutation hook: silently drop one automaton entry,
        breaking the shard-integrity audit. *)
    val corrupt_for_test : t -> unit
  end
end
