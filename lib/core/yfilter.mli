(** YFilter-style shared-prefix NFA index over a subscription set: all
    XPEs compile into one automaton; a publication is matched by one
    simulation pass, independently of the number of stored
    subscriptions. Promoted from comparison baseline to the primary
    match engine behind [Rtable.Prt] (selectable; decisions are gated to
    stay byte-identical to the flat list). Edges are hash lookups on
    interned names, and removal prunes eagerly, so the automaton always
    has exactly the states a fresh build would allocate. *)

open Xroute_xpath

type 'a t

val create : unit -> 'a t

(** Stored payloads. *)
val size : 'a t -> int

(** Automaton states, counted by walking the trie. Removal prunes
    eagerly, so this always equals {!allocated_states}; the walk exists
    so tests and the audit can catch a leak. *)
val state_count : 'a t -> int

(** Automaton states per the allocation counter: incremented on
    insertion, decremented when removal prunes. After any insert/remove
    sequence this equals the fresh-build count for the surviving XPEs. *)
val allocated_states : 'a t -> int

(** Cumulative matching work: automaton states reached plus accepting
    entries scanned across all {!match_path} calls — the "entries
    examined" measure the match-scaling bench compares engines on. *)
val match_ops : 'a t -> int

val insert : 'a t -> Xpe.t -> 'a -> unit

(** [remove t xpe pred] drops the payloads of the exact [xpe] selected
    by [pred], then prunes every automaton state left dead. *)
val remove : 'a t -> Xpe.t -> ('a -> bool) -> unit

(** Payloads of all subscriptions matching the interned path (attribute
    predicates re-checked against [attrs]). *)
val match_syms :
  'a t -> Xroute_support.Symbol.t array -> (string * string) list array -> 'a list

(** {!match_syms} after interning the element names. *)
val match_path : 'a t -> string array -> (string * string) list array -> 'a list

val match_names : 'a t -> string array -> 'a list

(** All stored (xpe, payload) pairs. *)
val to_list : 'a t -> (Xpe.t * 'a) list

(** Structural invariant violations (empty when healthy): no dead
    states, exact size and Desc-edge counters, no empty accepting
    entries. *)
val check_invariants : 'a t -> string list

(** Test hook: plant a dead state, which {!check_invariants} must
    report — the audit's must-fail mutation. *)
val plant_orphan : 'a t -> unit
