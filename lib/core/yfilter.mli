(** YFilter-style shared-prefix NFA index over a subscription set: all
    XPEs compile into one automaton; a publication is matched by one
    simulation pass, independently of the number of stored
    subscriptions. The baseline the paper's routing tables are contrasted
    with. *)

open Xroute_xpath

type 'a t

val create : unit -> 'a t

(** Stored payloads. *)
val size : 'a t -> int

(** Live automaton states: reachable states that still hold or lead to a
    payload (shared prefixes keep this well below the total number of
    steps). Shrinks after {!remove}, unlike {!allocated_states}. *)
val state_count : 'a t -> int

(** States ever allocated and not yet pruned. {!remove} prunes lazily
    (as YFilter does), so this counts dead prefixes too; it never
    decreases. *)
val allocated_states : 'a t -> int

val insert : 'a t -> Xpe.t -> 'a -> unit

(** [remove t xpe pred] drops the payloads of the exact [xpe] selected
    by [pred]. *)
val remove : 'a t -> Xpe.t -> ('a -> bool) -> unit

(** Payloads of all subscriptions matching the path (attribute
    predicates re-checked against [attrs]). *)
val match_path : 'a t -> string array -> (string * string) list array -> 'a list

val match_names : 'a t -> string array -> 'a list

(** All stored (xpe, payload) pairs. *)
val to_list : 'a t -> (Xpe.t * 'a) list
