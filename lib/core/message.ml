(* Protocol messages exchanged between brokers and clients.

   Publications travel as root-to-leaf paths (Sec. 3.1); subscriptions
   and unsubscriptions carry XPEs; advertisements and unadvertisements
   carry (possibly recursive) advertisement patterns. Identifiers make
   unsubscription/unadvertisement and duplicate suppression possible. *)

open Xroute_xpath

type sub_id = { origin : int; seq : int }

let compare_sub_id a b =
  match compare a.origin b.origin with 0 -> compare a.seq b.seq | c -> c

(* Causal trace context (lib/obs span layer): which trace a publication
   belongs to and which span caused this hop. Brokers copy it verbatim
   from input to output; the transport (overlay Net, the daemon) rewrites
   [parent_span] to the hop span it opens. Debug metadata: excluded from
   [wire_size] so enabling tracing never changes the modeled latencies. *)
type trace_ctx = { trace : int; parent_span : int }

type t =
  | Advertise of { id : sub_id; adv : Adv.t }
  | Unadvertise of { id : sub_id }
  | Subscribe of { id : sub_id; xpe : Xpe.t }
  | Unsubscribe of { id : sub_id }
  | Publish of {
      pub : Xroute_xml.Xml_paths.publication;
      (* XTreeNet-style optimization (Sec. 6 discussion): ids of the
         upstream subscriptions this publication already matched; the
         receiving broker may restrict matching to their subtrees. *)
      trail : sub_id list;
      ctx : trace_ctx option;
    }

let pp_sub_id ppf id = Format.fprintf ppf "%d.%d" id.origin id.seq

let pp ppf = function
  | Advertise { id; adv } -> Format.fprintf ppf "ADV[%a] %s" pp_sub_id id (Adv.to_string adv)
  | Unadvertise { id } -> Format.fprintf ppf "UNADV[%a]" pp_sub_id id
  | Subscribe { id; xpe } -> Format.fprintf ppf "SUB[%a] %s" pp_sub_id id (Xpe.to_string xpe)
  | Unsubscribe { id } -> Format.fprintf ppf "UNSUB[%a]" pp_sub_id id
  | Publish { pub; _ } ->
    Format.fprintf ppf "PUB %a" Xroute_xml.Xml_paths.pp_publication pub

let to_string m = Format.asprintf "%a" pp m

(* Approximate wire size in bytes, used by the traffic accounting: a
   fixed header plus the payload's printed size. Publication messages
   carry their path plus a share of the document body (the paper routes
   path-publications; subscribers transparently receive documents). *)
let wire_size = function
  | Advertise { adv; _ } -> 16 + String.length (Adv.to_string adv)
  | Unadvertise _ -> 16
  | Subscribe { xpe; _ } -> 16 + String.length (Xpe.to_string xpe)
  | Unsubscribe _ -> 16
  | Publish { pub; trail; _ } ->
    (* Each path message carries its share of the document body: the
       network delivers whole documents, split over their routed paths
       (this is what makes bigger documents slower, Figs. 10-11). *)
    16 + (8 * List.length trail)
    + Array.fold_left (fun acc s -> acc + String.length s + 1) 0 pub.steps
    + (pub.doc_size / max 1 pub.path_count)
