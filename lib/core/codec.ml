(* Wire codec for protocol messages.

   A deployment sends {!Message.t} values between broker processes; this
   codec fixes a compact, versioned, line-safe text format:

     1|A|<origin>.<seq>|<advertisement>
     1|U|<origin>.<seq>|
     1|S|<origin>.<seq>|<xpe>
     1|u|<origin>.<seq>|
     1|P|<doc>.<path>.<size>.<pathcount>[.<trace>.<parent-span>]|<trail>|<path elements>|<attr block>

   The two optional trailing meta components are the causal trace
   context (lib/obs spans); untraced publications omit them and encode
   byte-identically to the pre-tracing format.

   Fields are '|'-separated; element names and attribute tokens are
   percent-encoded so the separators never collide with content. The
   format is self-describing enough for a foreign implementation and
   deliberately independent of OCaml's marshaller (which is neither
   stable across versions nor safe to exchange). *)

open Xroute_xpath

type error = { offset : int; reason : string }

let pp_error ppf e = Format.fprintf ppf "decode error at %d: %s" e.offset e.reason

let version = 1

(* ---------------- escaping ---------------- *)

let needs_escape c = c = '%' || c = '|' || c = ',' || c = ';' || c = '=' || c = '\n'

let escape s =
  if String.for_all (fun c -> not (needs_escape c)) s then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if needs_escape c then Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let unescape s =
  if not (String.contains s '%') then Ok s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i >= n then Ok (Buffer.contents buf)
      else if s.[i] = '%' then
        if i + 2 >= n then Error "truncated escape"
        else begin
          match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
          | Some code ->
            Buffer.add_char buf (Char.chr code);
            go (i + 3)
          | None -> Error "malformed escape"
        end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 0
  end

(* ---------------- encoding ---------------- *)

let encode_sub_id (id : Message.sub_id) = Printf.sprintf "%d.%d" id.origin id.seq

let encode_attrs attrs =
  (* per position: k=v;k=v, positions ','-separated *)
  String.concat ","
    (Array.to_list
       (Array.map
          (fun al ->
            String.concat ";" (List.map (fun (k, v) -> escape k ^ "=" ^ escape v) al))
          attrs))

let encode (msg : Message.t) =
  match msg with
  | Message.Advertise { id; adv } ->
    Printf.sprintf "%d|A|%s|%s" version (encode_sub_id id) (escape (Adv.to_string adv))
  | Message.Unadvertise { id } -> Printf.sprintf "%d|U|%s|" version (encode_sub_id id)
  | Message.Subscribe { id; xpe } ->
    Printf.sprintf "%d|S|%s|%s" version (encode_sub_id id) (escape (Xpe.to_string xpe))
  | Message.Unsubscribe { id } -> Printf.sprintf "%d|u|%s|" version (encode_sub_id id)
  | Message.Publish { pub; trail; ctx } ->
    (* Trace context rides two extra dot-components of the meta field;
       absent when untraced, so untraced wires are byte-identical to the
       pre-tracing format (still version 1: old decoders were written
       against the 4-component form, new ones accept both). *)
    let meta =
      match ctx with
      | None ->
        Printf.sprintf "%d.%d.%d.%d" pub.doc_id pub.path_id pub.doc_size pub.path_count
      | Some { Message.trace; parent_span } ->
        Printf.sprintf "%d.%d.%d.%d.%d.%d" pub.doc_id pub.path_id pub.doc_size
          pub.path_count trace parent_span
    in
    Printf.sprintf "%d|P|%s|%s|%s|%s" version meta
      (String.concat "," (List.map encode_sub_id trail))
      (String.concat "," (Array.to_list (Array.map escape pub.steps)))
      (encode_attrs pub.attrs)

(* ---------------- decoding ---------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let fail reason = Error { offset = 0; reason }

let decode_sub_id s =
  match String.split_on_char '.' s with
  | [ o; q ] -> (
    match (int_of_string_opt o, int_of_string_opt q) with
    | Some origin, Some seq -> Ok { Message.origin; seq }
    | _ -> fail "malformed id")
  | _ -> fail "malformed id"

let decode_attrs s n =
  (* "" is the block of n attribute-free positions (for n = 1 the comma
     count cannot disambiguate, so treat it uniformly). *)
  if s = "" then Ok (Array.make n [])
  else begin
  let positions = String.split_on_char ',' s in
  if List.length positions <> n then fail "attribute block length mismatch"
  else begin
    let decode_pos p =
      if p = "" then Ok []
      else
        List.fold_left
          (fun acc kv ->
            let* acc = acc in
            match String.index_opt kv '=' with
            | None -> fail "malformed attribute"
            | Some i ->
              let k = String.sub kv 0 i in
              let v = String.sub kv (i + 1) (String.length kv - i - 1) in
              let* k = Result.map_error (fun r -> { offset = 0; reason = r }) (unescape k) in
              let* v = Result.map_error (fun r -> { offset = 0; reason = r }) (unescape v) in
              Ok ((k, v) :: acc))
          (Ok []) (String.split_on_char ';' p)
        |> Result.map List.rev
    in
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | p :: rest ->
        let* al = decode_pos p in
        go (al :: acc) rest
    in
    go [] positions
  end
  end

let decode line =
  match String.split_on_char '|' line with
  | v :: kind :: rest -> (
    let* () = if v = string_of_int version then Ok () else fail "unsupported version" in
    match (kind, rest) with
    | "A", [ id; adv ] ->
      let* id = decode_sub_id id in
      let* adv_s = Result.map_error (fun r -> { offset = 0; reason = r }) (unescape adv) in
      (match Adv.parse_opt adv_s with
      | Some adv -> Ok (Message.Advertise { id; adv })
      | None -> fail "malformed advertisement")
    | "U", [ id; _ ] ->
      let* id = decode_sub_id id in
      Ok (Message.Unadvertise { id })
    | "S", [ id; xpe ] ->
      let* id = decode_sub_id id in
      let* xpe_s = Result.map_error (fun r -> { offset = 0; reason = r }) (unescape xpe) in
      (match Xpe_parser.parse_opt xpe_s with
      | Some xpe -> Ok (Message.Subscribe { id; xpe })
      | None -> fail "malformed XPE")
    | "u", [ id; _ ] ->
      let* id = decode_sub_id id in
      Ok (Message.Unsubscribe { id })
    | "P", [ meta; trail; steps; attrs ] -> (
      let* fields, ctx =
        match String.split_on_char '.' meta with
        | [ d; p; z; pc ] -> Ok ((d, p, z, pc), Ok None)
        | [ d; p; z; pc; t; par ] -> (
          match (int_of_string_opt t, int_of_string_opt par) with
          | Some trace, Some parent_span ->
            Ok ((d, p, z, pc), Ok (Some { Message.trace; parent_span }))
          | _ -> fail "malformed trace context")
        | _ -> fail "malformed publication header"
      in
      let* ctx = ctx in
      let d, p, z, pc = fields in
      match
          (int_of_string_opt d, int_of_string_opt p, int_of_string_opt z, int_of_string_opt pc)
      with
      | Some doc_id, Some path_id, Some doc_size, Some path_count ->
        let* trail =
          if trail = "" then Ok []
          else
            List.fold_left
              (fun acc s ->
                let* acc = acc in
                let* id = decode_sub_id s in
                Ok (id :: acc))
              (Ok []) (String.split_on_char ',' trail)
            |> Result.map List.rev
        in
        let* steps =
          if steps = "" then fail "empty path"
          else
            List.fold_left
              (fun acc s ->
                let* acc = acc in
                let* s = Result.map_error (fun r -> { offset = 0; reason = r }) (unescape s) in
                if s = "" then fail "empty path element" else Ok (s :: acc))
              (Ok []) (String.split_on_char ',' steps)
            |> Result.map (fun l -> Array.of_list (List.rev l))
        in
        let* attrs = decode_attrs attrs (Array.length steps) in
        Ok
          (Message.Publish
             {
               pub =
                 (Xroute_xml.Xml_paths.make ~doc_id ~path_id ~steps ~attrs ~doc_size ~path_count);
               trail;
               ctx;
             })
      | _ -> fail "malformed publication header")
    | _ -> fail "unknown message kind")
  | _ -> fail "malformed message"

let decode_exn line =
  match decode line with
  | Ok msg -> msg
  | Error e -> failwith (Format.asprintf "%a" pp_error e)
