(** The content-based XML router: SRT + PRT + the routing protocol under
    the strategies of the paper's evaluation. [handle] consumes one
    message and returns the messages to emit, leaving delivery order and
    timing to the caller (the overlay simulator or the tests). *)


type merge_mode = No_merging | Perfect | Imperfect of float

type strategy = {
  use_adv : bool;  (** advertisement-based subscription routing *)
  use_cover : bool;  (** covering-based forwarding suppression *)
  merging : merge_mode;
  adv_cover : bool;  (** advertisement covering in the SRT (extension) *)
  trail_routing : bool;  (** XTreeNet-style restricted re-matching *)
  exact_engines : bool;  (** automata engines instead of the paper's *)
  srt_index : bool;
      (** root-element bucket index in the SRT (identical decisions,
          fewer match operations); off = flat list scan *)
  match_engine : Rtable.Prt.match_engine;
      (** PRT publication matcher: the shared-prefix NFA (default) or
          the covering tree; identical decisions, gated differentially *)
}

(** Advertisements + covering, no merging. *)
val default_strategy : strategy

(** The six rows of Tables 2-3 by name (see {!strategy_names}). *)
val strategy_of_name : string -> strategy option

val strategy_names : string list

type counters = {
  mutable msgs_in : int;
  mutable advs_in : int;
  mutable subs_in : int;
  mutable pubs_in : int;
  mutable unsubs_in : int;
  mutable pubs_dropped : int;
      (** publications that produced no output: in-network false
          positives under merging *)
  mutable deliveries : int;  (** publications handed to local clients *)
}

type t

val create : ?strategy:strategy -> id:int -> neighbors:int list -> unit -> t

val id : t -> int
val strategy : t -> strategy
val counters : t -> counters

(** The broker's metrics registry (see [Xroute_obs.Metrics]): message
    counters, match-op histograms and — after {!refresh_metrics} —
    index-size gauges. Registered eagerly at {!create}, so every metric
    name is present even before traffic arrives. *)
val metrics : t -> Xroute_obs.Metrics.t

(** Push the derived quantities (SRT/PRT sizes, cumulative match
    counters) into the registry; call before exporting it. *)
val refresh_metrics : t -> unit

val srt_size : t -> int
val prt_size : t -> int

(** Test hook: plant a dead state in the PRT's NFA, which the
    [nfa-integrity] audit must report. *)
val corrupt_nfa_for_test : t -> unit

(** Paths derivable from the publisher's DTD, needed by merging to
    compute imperfect degrees. *)
val set_universe : t -> string array list -> unit

(** Cumulative match/cover operations — the processing-cost measure the
    delay model charges. *)
val work : t -> int

(** {!work} split by stage: (SRT match ops, PRT match checks, PRT cover
    checks). The transport takes before/after deltas to size the
    per-stage spans of the causal-tracing layer. *)
val stage_ops : t -> int * int * int

(** Process one message from a neighbor or client; returns the messages
    to send. *)
val handle : t -> from:Rtable.endpoint -> Message.t -> (Rtable.endpoint * Message.t) list

(** Finish a publication that was decoded and matched off the main
    domain (the daemon's shard pool): performs exactly the accounting
    and hop-grouping [handle] does for a [Publish] — message and
    publication counters, the match-ops histogram fed with the shard's
    examined-entry count [match_ops], delivery/drop accounting — and
    returns the messages to send. The [payloads] must come from a
    stamp-ordered shard match so the output order is byte-identical to
    the sequential engine's. *)
val route_publication :
  t ->
  from:Rtable.endpoint ->
  pub:Xroute_xml.Xml_paths.publication ->
  ctx:Message.trace_ctx option ->
  payloads:Rtable.Prt.payload list ->
  match_ops:int ->
  (Rtable.endpoint * Message.t) list

(** Periodic merging pass (Sec. 4.3): replaces forwarded subscriptions
    by mergers within the strategy's degree bound; originals stay in the
    PRT so false positives never reach clients. Returns the subscription
    and unsubscription messages to send. *)
val merge_pass : t -> (Rtable.endpoint * Message.t) list

(** Number of subscriptions this broker has forwarded upstream. *)
val forwarded_count : t -> int

(** {2 Audit view}

    Read-only snapshot of the routing state for the invariant checks in
    [Xroute_check.Check] (and the [AUDIT|] wire command). The closures
    close over the live tables: take a view and consume it before
    handling further messages. [av_required_targets] recomputes the
    neighbor hops a subscription must currently reach without charging
    the SRT's match-op counters, so auditing never skews the metrics the
    delay model bills. *)

type audit_view = {
  av_id : int;
  av_strategy : strategy;
  av_neighbors : int list;
  av_srt_entries : Rtable.Srt.entry list;
  av_srt_invariants : string list;  (** [Rtable.Srt.check_invariants] *)
  av_prt_invariants : string list;  (** [Sub_tree.check_invariants] *)
  av_nfa_invariants : string list;  (** [Rtable.Prt.nfa_invariants] *)
  av_subs : (Message.sub_id * Xroute_xpath.Xpe.t * Rtable.endpoint) list;
      (** every stored PRT payload: id, XPE, last hop *)
  av_forwarded : (Message.sub_id * Rtable.endpoint list) list;
      (** where each subscription / merger was forwarded *)
  av_mergers : (Message.sub_id * Xroute_xpath.Xpe.t * Message.sub_id list) list;
      (** merger id, merger XPE, the member ids it suppressed *)
  av_suppressed : Message.sub_id list;  (** replaced by a merger *)
  av_covers : Xroute_xpath.Xpe.t -> Xroute_xpath.Xpe.t -> bool;
      (** the covering predicate the broker routes with *)
  av_required_targets : Xroute_xpath.Xpe.t -> Rtable.endpoint list;
      (** neighbor hops the subscription must reach under the current
          SRT (all neighbors under flooding) *)
}

val audit_view : t -> audit_view

(** {2 Crash recovery}

    Hooks for the fault-injection layer (lib/fault, executed by
    [Xroute_overlay.Net]): when a neighbor restarts after a crash, each
    surviving peer first calls {!neighbor_reset} to purge everything it
    learned from (or sent to) the dead process, then {!resync_for} to
    re-send the state the fresh peer needs — so routing state is
    rebuilt, never resurrected. *)

(** Advertisement ids stored in the SRT / from the given hop. *)
val srt_ids : t -> Message.sub_id list

val srt_ids_from : t -> Rtable.endpoint -> Message.sub_id list

(** Subscription ids stored in the PRT / from the given hop. *)
val prt_ids : t -> Message.sub_id list

(** Is the subscription currently stored in the PRT? O(log n); the
    daemon's shard pool diffs this across [handle] calls to mirror
    actual PRT insertions/removals onto the worker shards. *)
val prt_mem : t -> Message.sub_id -> bool

val prt_ids_from : t -> Rtable.endpoint -> Message.sub_id list

(** Forget everything learned from or forwarded to [ep]: SRT entries
    from [ep] leave via the normal unadvertise flood, PRT entries via
    the unsubscribe path (which re-forwards the covered survivors they
    shadowed), and forwarded-target records pointing at [ep] are
    dropped so the purge never messages [ep] itself. Returns the
    messages to send. *)
val neighbor_reset : t -> ep:Rtable.endpoint -> (Rtable.endpoint * Message.t) list

(** Re-send the state a freshly restarted [ep] needs: every surviving
    advertisement, plus (under flooding) stored subscriptions that must
    reach [ep] directly. Call after {!neighbor_reset}. *)
val resync_for : t -> ep:Rtable.endpoint -> (Rtable.endpoint * Message.t) list
