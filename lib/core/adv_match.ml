(* Subscription/advertisement matching (Sec. 3.2 and 3.3 of the paper).

   A broker forwards a subscription towards the publishers whose
   advertisements overlap it: [overlaps s a] decides whether
   P(s) ∩ P(a) ≠ ∅. The algorithms mirror the paper:

   - [abs_expr_and_adv]   absolute simple XPE vs non-recursive adv;
   - [rel_expr_and_adv]   relative simple XPE vs non-recursive adv
                          (string matching with wildcards; see the note on
                          KMP below);
   - [des_expr_and_adv]   XPE with descendant operators vs non-recursive
                          adv (greedy segment matching);
   - [abs_expr_and_rec_adv] absolute XPE vs recursive adv: bounded
                          unrolling of the recursive patterns, the
                          general form of the paper's Fig. 3 covering
                          simple-, series- and embedded-recursive
                          advertisements uniformly.

   On the KMP claim: the paper applies KMP to relative-XPE matching. With
   wildcards on both sides the "overlap" relation is not transitive, so
   textbook KMP can skip genuine matches. [rel_expr_and_adv] therefore
   uses liberal-border shifts: the failure function is computed under the
   relation "some element satisfies both node tests", which never
   overshoots, and the shifted-to prefix is re-verified rather than
   assumed. This is sound and complete, O(n·k) worst case but with
   KMP-style skipping on exact elements; the naive reference and the
   micro-benchmark comparing them live alongside. *)

open Xroute_xpath

(* Attribute predicates never constrain advertisement overlap: an
   advertisement says nothing about attribute values, so a publication
   carrying the right values may exist whenever the names align. Hence
   all comparisons here are at the node-test level. *)

(* Fig. 2(b): does an advertisement symbol overlap a subscription node
   test? *)
let test_overlap (a : Adv.symbol) (s : Xpe.nodetest) =
  match (a, s) with
  | Xpe.Star, _ | _, Xpe.Star -> true
  | Xpe.Name x, Xpe.Name y -> Xroute_support.Symbol.equal x y

(* ------------------------------------------------------------------ *)
(* Non-recursive advertisements                                        *)
(* ------------------------------------------------------------------ *)

(* Absolute simple XPE vs non-recursive advertisement: the XPE must not be
   longer than the advertisement (publications have exactly the
   advertisement's length), and every aligned pair must overlap. *)
let abs_expr_and_adv (steps : Xpe.step list) (adv : Adv.symbol array) =
  let rec go i = function
    | [] -> true
    | (s : Xpe.step) :: rest ->
      i < Array.length adv && test_overlap adv.(i) s.test && go (i + 1) rest
  in
  go 0 steps

(* Naive matching of a relative simple XPE inside the advertisement: try
   every start offset. O(n·k); the reference implementation. *)
let rel_expr_and_adv_naive (steps : Xpe.step list) (adv : Adv.symbol array) =
  let k = List.length steps in
  let n = Array.length adv in
  let rec try_offset o =
    if o + k > n then false
    else begin
      let rec check i = function
        | [] -> true
        | (s : Xpe.step) :: rest -> test_overlap adv.(o + i) s.test && check (i + 1) rest
      in
      if check 0 steps then true else try_offset (o + 1)
    end
  in
  try_offset 0

(* Could two subscription node tests be satisfied by one element? Used
   for the liberal border: if the answer is yes we cannot rule the border
   out, so the shift must respect it. *)
let tests_compatible (a : Xpe.nodetest) (b : Xpe.nodetest) =
  match (a, b) with
  | Xpe.Star, _ | _, Xpe.Star -> true
  | Xpe.Name x, Xpe.Name y -> Xroute_support.Symbol.equal x y

(* Liberal failure function: fail.(j) = length of the longest proper
   border of pattern[0..j] under [tests_compatible]. *)
let liberal_failure pattern =
  let k = Array.length pattern in
  let fail = Array.make k 0 in
  for j = 1 to k - 1 do
    (* longest b < j+1 such that pattern[0..b-1] compatible with
       pattern[j-b+1..j] *)
    let rec best b =
      if b = 0 then 0
      else begin
        let ok = ref true in
        for i = 0 to b - 1 do
          if not (tests_compatible pattern.(i) pattern.(j - b + 1 + i)) then ok := false
        done;
        if !ok then b else best (b - 1)
      end
    in
    fail.(j) <- best j
  done;
  fail

(* Relative simple XPE matching with liberal-border shifts. On a mismatch
   at pattern position j, the window advances by j - fail.(j-1) (never
   past a viable occurrence) and matching restarts at the border length —
   but the border region is re-verified because compatibility is not
   transitive.

   The skipping is only sound when the advertisement itself is free of
   wildcards: an advertisement [*] satisfies any pair of pattern tests,
   so in its presence no shift can be ruled out and the scan degrades to
   the naive algorithm. DTD-generated advertisements are wildcard-free
   except for ANY content, so the fast path is the common one. *)
let rel_expr_and_adv (steps : Xpe.step list) (adv : Adv.symbol array) =
  let pattern = Array.of_list (List.map (fun (s : Xpe.step) -> s.Xpe.test) steps) in
  let k = Array.length pattern in
  let n = Array.length adv in
  if k = 0 then true
  else if k > n then false
  else if Array.exists (fun s -> s = Xpe.Star) adv then rel_expr_and_adv_naive steps adv
  else begin
    let fail = liberal_failure pattern in
    let rec attempt o j =
      (* invariant: positions o..o+j-1 verified against pattern[0..j-1] *)
      if j = k then true
      else if o + k > n then false
      else if test_overlap adv.(o + j) pattern.(j) then attempt o (j + 1)
      else if j = 0 then attempt (o + 1) 0
      else begin
        let b = fail.(j - 1) in
        let o' = o + j - b in
        (* Re-verify the border region instead of trusting it. *)
        let rec verify i = if i >= b then b else if test_overlap adv.(o' + i) pattern.(i) then verify (i + 1) else i in
        let verified = verify 0 in
        if verified = b then attempt o' b else attempt o' verified
      end
    in
    attempt 0 0
  end

(* XPE with descendant operators vs non-recursive advertisement: split
   the XPE into //-free segments and greedily match them left to right
   inside the advertisement (earliest feasible position is optimal since
   per-position overlap is independent). The first segment is anchored at
   position 0 when the XPE starts with '/'. *)
let des_expr_and_adv (xpe : Xpe.t) (adv : Adv.symbol array) =
  let segments = Xpe.split_on_desc xpe in
  let n = Array.length adv in
  let seg_matches_at seg o =
    let rec go i = function
      | [] -> true
      | (s : Xpe.step) :: rest ->
        o + i < n && test_overlap adv.(o + i) s.Xpe.test && go (i + 1) rest
    in
    go 0 seg
  in
  let rec place segs from anchored =
    match segs with
    | [] -> true
    | seg :: rest ->
      let len = List.length seg in
      if anchored then seg_matches_at seg from && place rest (from + len) false
      else begin
        let rec search o =
          if o + len > n then false
          else if seg_matches_at seg o && place rest (o + len) false then true
          else search (o + 1)
        in
        search from
      end
  in
  place segments 0 (Xpe.first_segment_anchored xpe)

(* Dispatcher for non-recursive advertisements. *)
let expr_and_adv (xpe : Xpe.t) (adv : Adv.symbol array) =
  if Xpe.is_simple xpe then begin
    if Xpe.is_absolute xpe then
      Xpe.length xpe <= Array.length adv && abs_expr_and_adv xpe.Xpe.steps adv
    else Xpe.length xpe <= Array.length adv && rel_expr_and_adv xpe.Xpe.steps adv
  end
  else des_expr_and_adv xpe adv

(* ------------------------------------------------------------------ *)
(* Recursive advertisements                                            *)
(* ------------------------------------------------------------------ *)

(* XPE vs recursive advertisement: try the unrollings with a bounded
   total number of repetition instances — the general form of the paper's
   AbsExprAndSimRecAdv / AbsExprAndSerRecAdv / AbsExprAndEmbRecAdv.

   Completeness of the bound: a match constrains at most [length xpe]
   positions, so at most that many repetition instances are touched; any
   untouched instance can be deleted (each group keeps its mandatory
   one), leaving at most [length xpe + group_count] instances. *)
(* Unrollings are memoized per (advertisement, budget): routers match
   thousands of subscriptions against the same advertisement set. *)
let expansion_cache : (string * int, Adv.symbol array list) Hashtbl.t = Hashtbl.create 256

let expansions_of adv budget =
  let key = (Adv.to_string adv, budget) in
  match Hashtbl.find_opt expansion_cache key with
  | Some e -> e
  | None ->
    let e = Adv.expand_budget ~budget adv in
    Hashtbl.replace expansion_cache key e;
    e

let expr_and_rec_adv (xpe : Xpe.t) (adv : Adv.t) =
  let budget = Xpe.length xpe + Adv.group_count adv in
  let expansions = expansions_of adv budget in
  List.exists (fun symbols -> expr_and_adv xpe symbols) expansions

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(* The paper's engine. *)
let overlaps_paper (xpe : Xpe.t) (adv : Adv.t) =
  if Adv.is_recursive adv then expr_and_rec_adv xpe adv
  else Xpe.length xpe <= Adv.length adv && expr_and_adv xpe (Adv.to_symbols adv)

(* The exact automata engine (DESIGN.md ablation). *)
let overlaps_exact (xpe : Xpe.t) (adv : Adv.t) = Xroute_automata.Lang.xpe_overlaps_adv xpe adv

type engine = Paper | Exact

let overlaps ?(engine = Paper) xpe adv =
  match engine with Paper -> overlaps_paper xpe adv | Exact -> overlaps_exact xpe adv
