(* The subscription tree (Sec. 4.1 of the paper).

   Subscriptions are stored so that every node's XPE covers the XPEs of
   its entire subtree. Because covering is only a partial order, a node
   may be covered by subscriptions outside its ancestor chain; "super
   pointers" record such extra covering relations, turning the structure
   into a DAG.

   The protocol-relevant queries are:
   - [is_covered]: is a new subscription covered by a stored one? This is
     decided by scanning root children and descending only into covering
     children — complete, because covering is transitive, so if anything
     covers the new XPE then some maximal (depth-1) node does;
   - [covered_roots]: the depth-1 nodes a new subscription covers (these
     are the previously forwarded subscriptions that must be
     unsubscribed when the new one takes over);
   - [match_names]: all payloads whose XPE matches a publication, with
     subtree pruning — if a node fails to match, nothing it covers can
     match, so its subtree is skipped. This pruning is where
     covering-based routing gains its publication routing time.

   The covering predicate is injected at creation, so the tree runs on
   either the paper engine or the exact automata engine. *)

open Xroute_xpath
module Symbol = Xroute_support.Symbol

type 'a node = {
  id : int;
  xpe : Xpe.t;
  mutable payloads : 'a list;
  mutable parent : 'a node option; (* None for the virtual root *)
  mutable children : 'a node list;
  mutable supers : 'a node list; (* nodes this one covers outside its subtree *)
}

type 'a t = {
  covers : Xpe.t -> Xpe.t -> bool;
  flat : bool; (* no covering organization: all nodes sit under the root *)
  root : 'a node; (* virtual: covers everything, holds no subscription *)
  by_key : (string, 'a node) Hashtbl.t; (* canonical XPE -> its node *)
  (* First-step index over the root fringe (the paper's Sec. 4.1 search
     optimizations): a subscription whose first semantic step is a plain
     child name test can only stand in a covering relation with root
     nodes sharing that name or root nodes in the [general] bucket
     (wildcard-first, descendant-first, relative). Root-level scans are
     the hot path of insertion and covering queries. *)
  (* Keyed by interned name: bucket lookups neither hash nor compare
     strings. *)
  root_named : (Symbol.t, 'a node list) Hashtbl.t;
  mutable root_general : 'a node list;
  mutable next_id : int;
  mutable count : int; (* stored subscriptions (root excluded) *)
  mutable cover_checks : int; (* covering tests performed, for metrics *)
  mutable match_checks : int; (* publication match tests performed *)
  (* Memoized covering queries. Workloads where many subscribers share
     an XPE repeat the same root-fringe scan per arrival, which was the
     hot loop of large simulations; results stay valid until the tree's
     shape changes ([version] stamps every attach/detach). A cache hit
     still charges [cover_checks] with exactly what the fresh scan it
     replaces would have performed, so the simulated cost model — and
     with it virtual time — is unchanged by the cache. *)
  mutable version : int;
  mutable cache_version : int;
  coverers_cache : (string, 'a node list * int) Hashtbl.t;
  covered_roots_cache : (string, 'a node list * int) Hashtbl.t;
}

(* The index key of an XPE: [Some name] when its first semantic step is a
   child-axis name test, [None] for the general bucket. *)
let first_step_key xpe =
  match Xpe.semantic_steps xpe with
  | { Xpe.axis = Xpe.Child; test = Xpe.Name n; _ } :: _ -> Some n
  | _ -> None

(* [flat] builds the no-covering baseline: insertion appends under the
   root in O(1) and no covering relation is ever reported. *)
let create ?(flat = false) ?(covers = fun s1 s2 -> Cover.covers s1 s2) () =
  let root =
    {
      id = 0;
      xpe = Xpe.absolute_of_names [ "*" ];
      (* placeholder; never consulted *)
      payloads = [];
      parent = None;
      children = [];
      supers = [];
    }
  in
  {
    covers = (if flat then fun _ _ -> false else covers);
    flat;
    root;
    by_key = Hashtbl.create 64;
    root_named = Hashtbl.create 64;
    root_general = [];
    next_id = 1;
    count = 0;
    cover_checks = 0;
    match_checks = 0;
    version = 0;
    cache_version = 0;
    coverers_cache = Hashtbl.create 64;
    covered_roots_cache = Hashtbl.create 64;
  }

let size t = t.count
let root t = t.root
let cover_checks t = t.cover_checks
let match_checks t = t.match_checks

let node_xpe n = n.xpe
let node_payloads n = n.payloads
let node_children n = n.children
let node_supers n = n.supers

let is_root n = n.parent = None

let covers_checked t s1 s2 =
  t.cover_checks <- t.cover_checks + 1;
  t.covers s1 s2

(* ---------------- root fringe index ---------------- *)

let root_index_add t n =
  match first_step_key n.xpe with
  | Some name ->
    let existing = Option.value ~default:[] (Hashtbl.find_opt t.root_named name) in
    Hashtbl.replace t.root_named name (n :: existing)
  | None -> t.root_general <- n :: t.root_general

let root_index_remove t n =
  match first_step_key n.xpe with
  | Some name ->
    let existing = Option.value ~default:[] (Hashtbl.find_opt t.root_named name) in
    Hashtbl.replace t.root_named name (List.filter (fun x -> x.id <> n.id) existing)
  | None -> t.root_general <- List.filter (fun x -> x.id <> n.id) t.root_general

(* Root nodes that can possibly cover [xpe] (complete: a coverer of a
   name-first XPE must share the name or be in the general bucket). *)
let root_cover_candidates t xpe =
  match first_step_key xpe with
  | Some name ->
    Option.value ~default:[] (Hashtbl.find_opt t.root_named name) @ t.root_general
  | None -> t.root.children

(* Root nodes that [xpe] can possibly cover: a name-first XPE only covers
   nodes sharing its first name; anything else may cover anything. *)
let root_covered_candidates t xpe =
  match first_step_key xpe with
  | Some name -> Option.value ~default:[] (Hashtbl.find_opt t.root_named name)
  | None -> t.root.children

let rec iter_subtree f n =
  f n;
  List.iter (iter_subtree f) n.children

(* All stored nodes (excluding the virtual root). *)
let iter f t = List.iter (iter_subtree f) t.root.children

let fold f acc t =
  let acc = ref acc in
  iter (fun n -> acc := f !acc n) t;
  !acc

let to_list t = List.rev (fold (fun acc n -> n :: acc) [] t)

(* Maximal stored subscriptions: the forwarded set under covering-based
   routing. *)
let maximal t = t.root.children

let depth t =
  let rec go n = 1 + List.fold_left (fun acc c -> max acc (go c)) 0 n.children in
  List.fold_left (fun acc c -> max acc (go c)) 0 t.root.children

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

(* Find the stored node whose XPE equals [xpe] (hash lookup on the
   canonical form; equal XPEs always share one node). *)
let find_equal t xpe = Hashtbl.find_opt t.by_key (Xpe.to_string xpe)

(* Is [xpe] covered by a stored subscription (strictly or equally)? By
   transitivity it suffices to look at depth-1 nodes. *)
let is_covered t xpe =
  (not t.flat)
  && ((match find_equal t xpe with Some _ -> true | None -> false)
     || List.exists (fun c -> covers_checked t c.xpe xpe) (root_cover_candidates t xpe))

let cache_refresh t =
  if t.cache_version <> t.version then begin
    Hashtbl.reset t.coverers_cache;
    Hashtbl.reset t.covered_roots_cache;
    t.cache_version <- t.version
  end

(* Depth-1 nodes covered by [xpe]. *)
let covered_roots t xpe =
  if t.flat then []
  else begin
    cache_refresh t;
    let key = Xpe.to_string xpe in
    match Hashtbl.find_opt t.covered_roots_cache key with
    | Some (nodes, checks) ->
      t.cover_checks <- t.cover_checks + checks;
      nodes
    | None ->
      let c0 = t.cover_checks in
      let nodes =
        List.filter (fun c -> covers_checked t xpe c.xpe) (root_covered_candidates t xpe)
      in
      Hashtbl.add t.covered_roots_cache key (nodes, t.cover_checks - c0);
      nodes
  end

(* All stored nodes covered by [xpe]: subtrees of covered roots plus
   whatever super pointers reach (used by diagnostics and merging). *)
let covered_nodes t xpe =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec add n =
    if not (Hashtbl.mem seen n.id) then begin
      Hashtbl.add seen n.id ();
      acc := n :: !acc;
      List.iter add n.children;
      List.iter add n.supers
    end
  in
  let rec scan n =
    List.iter
      (fun c -> if covers_checked t xpe c.xpe then add c else scan c)
      n.children
  in
  scan t.root;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Insertion                                                           *)
(* ------------------------------------------------------------------ *)

let attach t parent n =
  t.version <- t.version + 1;
  n.parent <- Some parent;
  parent.children <- n :: parent.children;
  if is_root parent then root_index_add t n

let detach_from t parent n =
  t.version <- t.version + 1;
  parent.children <- List.filter (fun x -> x.id <> n.id) parent.children;
  if is_root parent then root_index_remove t n

(* Insert a subscription. Returns the node holding it (an existing node
   when an equal XPE is already stored — payloads accumulate). Cases
   follow Sec. 4.1:
   1. no covering relation with any child: new sibling; children of the
      parent that the new node covers are re-parented under it (case 2 of
      the paper, generalized to several nodes);
   3. a child covers the new subscription: descend into it. *)
let insert t xpe payload =
  match find_equal t xpe with
  | Some node ->
    (* equal XPEs share a node; payloads accumulate *)
    node.payloads <- payload :: node.payloads;
    node
  | None ->
    let fresh () =
      let n =
        { id = t.next_id; xpe; payloads = [ payload ]; parent = None; children = []; supers = [] }
      in
      t.next_id <- t.next_id + 1;
      t.count <- t.count + 1;
      Hashtbl.replace t.by_key (Xpe.to_string xpe) n;
      n
    in
    if t.flat then begin
      let n = fresh () in
      attach t t.root n;
      n
    end
    else begin
      let rec place parent =
        let candidates =
          if is_root parent then root_cover_candidates t xpe else parent.children
        in
        let covering = List.find_opt (fun c -> covers_checked t c.xpe xpe) candidates in
        match covering with
        | Some c -> place c
        | None ->
          let covered_candidates =
            if is_root parent then root_covered_candidates t xpe else parent.children
          in
          let covered = List.filter (fun c -> covers_checked t xpe c.xpe) covered_candidates in
          let n = fresh () in
          (* attach the new node first: [attach]/[detach_from] maintain
             the root-fringe index based on the parent, so the node must
             know its place before it adopts children *)
          attach t parent n;
          (* re-parent covered siblings under the new node *)
          List.iter
            (fun c ->
              detach_from t parent c;
              attach t n c)
            covered;
          (* super pointers: the parent's supers that the new node covers
             move to it (paper, case 1/2). *)
          let moved, kept =
            List.partition (fun s -> covers_checked t xpe s.xpe) parent.supers
          in
          parent.supers <- kept;
          n.supers <- moved;
          n
      in
      place t.root
    end

(* Record an extra covering relation discovered outside the tree shape
   (lazy super-pointer maintenance). *)
let add_super coverer covered =
  if not (List.exists (fun s -> s.id = covered.id) coverer.supers) then
    coverer.supers <- covered :: coverer.supers

(* ------------------------------------------------------------------ *)
(* Removal                                                             *)
(* ------------------------------------------------------------------ *)

(* Remove one payload occurrence; the node disappears when its last
   payload does, its children being promoted to the parent. Super
   pointers to the node are dropped lazily during traversals; here we
   clean eagerly to keep the structure tight. *)
let remove_node t n =
  match n.parent with
  | None -> invalid_arg "Sub_tree.remove_node: virtual root"
  | Some p ->
    Hashtbl.remove t.by_key (Xpe.to_string n.xpe);
    detach_from t p n;
    List.iter (fun c -> attach t p c) n.children;
    n.children <- [];
    (* drop super pointers to n *)
    iter (fun m -> m.supers <- List.filter (fun s -> s.id <> n.id) m.supers) t;
    p.supers <- List.filter (fun s -> s.id <> n.id) p.supers;
    t.count <- t.count - 1

(* Remove one occurrence (physical equality) of [payload]; the node is
   deleted with its children promoted when its last payload goes. *)
let remove_payload t n payload =
  let rec drop_one = function
    | [] -> []
    | x :: rest -> if x == payload then rest else x :: drop_one rest
  in
  n.payloads <- drop_one n.payloads;
  match n.payloads with [] -> remove_node t n | _ :: _ -> ()

(* ------------------------------------------------------------------ *)
(* Publication matching                                                *)
(* ------------------------------------------------------------------ *)

(* All payloads of nodes matching the publication, pruning subtrees at
   the first non-matching node. *)
let match_syms t syms attrs =
  let acc = ref [] in
  let rec go n =
    t.match_checks <- t.match_checks + 1;
    if Xpe_eval.matches_syms n.xpe syms attrs then begin
      acc := List.rev_append n.payloads !acc;
      List.iter go n.children
    end
  in
  List.iter go t.root.children;
  List.rev !acc

let match_path t steps attrs = match_syms t (Symbol.intern_path steps) attrs

let match_names t steps = match_path t steps (Array.make (Array.length steps) [])

(* Exhaustive matching without pruning, for the no-covering baseline and
   for cross-checking the pruned version in tests. *)
let match_syms_linear t syms attrs =
  let acc = ref [] in
  iter
    (fun n ->
      t.match_checks <- t.match_checks + 1;
      if Xpe_eval.matches_syms n.xpe syms attrs then acc := List.rev_append n.payloads !acc)
    t;
  List.rev !acc

let match_path_linear t steps attrs = match_syms_linear t (Symbol.intern_path steps) attrs

(* ------------------------------------------------------------------ *)
(* Invariants (for tests)                                              *)
(* ------------------------------------------------------------------ *)

(* Check structural invariants; returns a list of violation messages. *)
let check_invariants t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let rec go n =
    List.iter
      (fun c ->
        (match c.parent with
        | Some p when p.id = n.id -> ()
        | _ -> err "node %d has a wrong parent pointer" c.id);
        if not (is_root n) && not (t.covers n.xpe c.xpe) then
          err "parent %s does not cover child %s" (Xpe.to_string n.xpe) (Xpe.to_string c.xpe);
        go c)
      n.children;
    if not (is_root n) then
      List.iter
        (fun s ->
          if not (t.covers n.xpe s.xpe) then
            err "super pointer %s -> %s without covering" (Xpe.to_string n.xpe)
              (Xpe.to_string s.xpe))
        n.supers
  in
  go t.root;
  (* count consistency *)
  let counted = fold (fun acc _ -> acc + 1) 0 t in
  if counted <> t.count then err "size mismatch: counted %d, recorded %d" counted t.count;
  List.rev !errors

(* All stored nodes whose XPE covers [xpe] (strictly or equally). Found
   by descending into every covering child: any coverer's ancestors also
   cover, so the covering-descent frontier reaches them all. The root
   fringe is pre-filtered through the first-step index. *)
let coverers t xpe =
  if t.flat then []
  else begin
    cache_refresh t;
    let key = Xpe.to_string xpe in
    match Hashtbl.find_opt t.coverers_cache key with
    | Some (nodes, checks) ->
      t.cover_checks <- t.cover_checks + checks;
      nodes
    | None ->
      let c0 = t.cover_checks in
      let acc = ref [] in
      let rec go children =
        List.iter
          (fun c ->
            if covers_checked t c.xpe xpe then begin
              acc := c :: !acc;
              go c.children
            end)
          children
      in
      go (root_cover_candidates t xpe);
      let nodes = List.rev !acc in
      Hashtbl.add t.coverers_cache key (nodes, t.cover_checks - c0);
      nodes
  end

(* Total stored payloads (equal XPEs share one node but keep all their
   payloads). *)
let payload_count t = fold (fun acc n -> acc + List.length n.payloads) 0 t
