(* Covering detection between XPEs (Sec. 4.2 of the paper).

   [covers s1 s2] decides (soundly) whether P(s1) ⊇ P(s2). The paper's
   algorithms are deliberately incomplete in places — e.g. an absolute XPE
   is never reported to cover a relative one — which is safe for routing:
   a missed covering relation only costs compactness, never correctness.
   Soundness (never claiming a covering that does not hold) is what the
   property tests enforce against the exact automata oracle.

   Algorithms:
   - [abs_sim_cov]  two absolute simple XPEs: length test plus positional
     covering rules;
   - [rel_sim_cov]  relative simple s1 against simple s2: positional rules
     at some offset (string matching, same structure as RelExprAndAdv);
   - [des_cov]      XPEs with descendant operators: split both into
     //-free segments and search for an order-preserving placement of
     s1's segments inside s2's segments. A placement may overhang the end
     of an s2 segment into the following gap when the overhanging steps
     are unconstrained wildcards (the paper's special case); the overhang
     length becomes a "debt" that the next placement must clear by
     standing at least that far into later segments, which keeps the
     witness alignment valid for every gap size, including zero. *)

open Xroute_xpath

(* Positional covering rule: node test of s1 covers that of s2, and s1's
   predicates are a subset of s2's (fewer constraints select more). *)
let test_covers (a : Xpe.nodetest) (b : Xpe.nodetest) =
  match (a, b) with
  | Xpe.Star, _ -> true
  | Xpe.Name x, Xpe.Name y -> Xroute_support.Symbol.equal x y
  | Xpe.Name _, Xpe.Star -> false

let preds_subset (p1 : Xpe.predicate list) (p2 : Xpe.predicate list) =
  List.for_all (fun p -> List.exists (fun q -> p = q) p2) p1

let step_covers (s1 : Xpe.step) (s2 : Xpe.step) =
  test_covers s1.test s2.test && preds_subset s1.preds s2.preds

(* Is the step an unconstrained wildcard (covers any one element)? *)
let step_is_free (s : Xpe.step) = s.Xpe.test = Xpe.Star && s.preds = []

(* ------------------------------------------------------------------ *)
(* Simple XPEs                                                         *)
(* ------------------------------------------------------------------ *)

(* Both absolute, no descendant operators: s1 covers s2 iff s1 is not
   longer and covers positionally. *)
let abs_sim_cov (s1 : Xpe.t) (s2 : Xpe.t) =
  Xpe.length s1 <= Xpe.length s2
  &&
  let rec go l1 l2 =
    match (l1, l2) with
    | [], _ -> true
    | _ :: _, [] -> false
    | a :: r1, b :: r2 -> step_covers a b && go r1 r2
  in
  go s1.Xpe.steps s2.Xpe.steps

(* Relative simple s1 against simple s2 (absolute or relative): s1 must
   cover s2 positionally at some offset, fully inside s2's pattern. *)
let rel_sim_cov (s1 : Xpe.t) (s2 : Xpe.t) =
  let p1 = Array.of_list s1.Xpe.steps in
  let p2 = Array.of_list s2.Xpe.steps in
  let k = Array.length p1 and n = Array.length p2 in
  let rec try_offset o =
    if o + k > n then false
    else begin
      let rec check i = i >= k || (step_covers p1.(i) p2.(o + i) && check (i + 1)) in
      if check 0 then true else try_offset (o + 1)
    end
  in
  try_offset 0

(* ------------------------------------------------------------------ *)
(* Descendant operators                                                *)
(* ------------------------------------------------------------------ *)

type segment = { steps : Xpe.step array }

(* //-free segments of an XPE plus whether the first is anchored at the
   root. *)
let segments_of xpe =
  ( List.map (fun steps -> { steps = Array.of_list steps }) (Xpe.split_on_desc xpe),
    Xpe.first_segment_anchored xpe )

(* Place s1's segments into s2's, in order. Coordinates are "minimal":
   every gap of s2 taken as zero, so position p inside segment h_j at
   offset o is Σ|h_0..j-1)| + o. [debt] is the number of wildcard
   positions the previous placement overhung past its segment's end; the
   next placement must start at least [debt] positions into the
   following segments so the witness alignment stays monotone for every
   gap size. *)
let des_cov (s1 : Xpe.t) (s2 : Xpe.t) =
  if Xpe.length s1 > Xpe.length s2 then false
  else begin
    let g1, anchored1 = segments_of s1 in
    let h2, anchored2 = segments_of s2 in
    if anchored1 && not anchored2 then false
    else begin
      let h = Array.of_list h2 in
      let nseg = Array.length h in
      (* Total remaining length (minimal coordinates) from (j, o). *)
      let remaining =
        let suffix = Array.make (nseg + 1) 0 in
        for j = nseg - 1 downto 0 do
          suffix.(j) <- suffix.(j + 1) + Array.length h.(j).steps
        done;
        fun j o -> if j >= nseg then 0 else suffix.(j) - o
      in
      (* Try to place [seg] rigidly at segment [j], offset [o]: steps
         inside h_j must be covered positionally; steps past the end must
         be free wildcards overhanging into the gap after h_j (which must
         exist) and into later segments' minimal positions. Returns the
         continuation point and the new debt. *)
      let place_at (seg : segment) j o =
        let len_j = Array.length h.(j).steps in
        let klen = Array.length seg.steps in
        if remaining j o < klen then None
        else begin
          let rec go i =
            if i >= klen then true
            else if o + i < len_j then step_covers seg.steps.(i) h.(j).steps.(o + i) && go (i + 1)
            else
              (* Overhang: past the end of h_j. Requires a following gap
                 and unconstrained wildcards. *)
              j < nseg - 1 && step_is_free seg.steps.(i) && go (i + 1)
          in
          if not (go 0) then None
          else begin
            let overhang = max 0 ((o + klen) - len_j) in
            if overhang = 0 then Some (j, o + klen, 0) else Some (j + 1, 0, overhang)
          end
        end
      in
      (* Search: segments of s1 in order; (j, o) = earliest allowed
         position; [debt] = pending overhang length; [gap_before] tells
         whether a // precedes the segment being placed (true except for
         an anchored first segment). *)
      let rec search segs j o debt ~floating =
        match segs with
        | [] -> true (* trailing overhang constrains nothing further *)
        | seg :: rest ->
          if not floating then begin
            (* anchored: must sit exactly at (j, o) with debt 0 *)
            match place_at seg j o with
            | Some (j', o', debt') -> search rest j' o' debt' ~floating:true
            | None -> false
          end
          else begin
            (* floating: try every position at/after (j, o); clearing the
               debt requires standing [debt] past the segment start that
               follows the overhang. *)
            let rec try_from j o dist =
              if j >= nseg then false
              else if o >= Array.length h.(j).steps then try_from (j + 1) 0 dist
              else begin
                let here =
                  match place_at seg j o with
                  | Some (j', o', debt') when dist >= debt ->
                    search rest j' o' debt' ~floating:true
                  | Some _ | None -> false
                in
                here || try_from j (o + 1) (dist + 1)
              end
            in
            try_from j o 0
          end
      in
      match g1 with
      | [] -> true
      | _ -> search g1 0 0 0 ~floating:(not anchored1)
    end
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(* The paper's covering pipeline. *)
let covers_paper (s1 : Xpe.t) (s2 : Xpe.t) =
  if Xpe.equal s1 s2 then true
  else if Xpe.is_simple s1 && Xpe.is_simple s2 then begin
    if Xpe.is_relative s1 then rel_sim_cov s1 s2
    else if Xpe.is_relative s2 then false (* the paper: absolute never covers relative *)
    else abs_sim_cov s1 s2
  end
  else des_cov s1 s2

(* Exact engine: automata containment at the name level, with predicate
   handling layered on conservatively. Exact when neither side carries
   predicates; when they do, the name-level containment is combined with
   a positional predicate check only for same-shape XPEs, otherwise we
   fall back to the paper rules. *)
let covers_exact (s1 : Xpe.t) (s2 : Xpe.t) =
  if not (Xpe.has_predicates s1) then Xroute_automata.Lang.xpe_contains s1 s2
  else covers_paper s1 s2

type engine = Paper | Exact

let covers ?(engine = Paper) s1 s2 =
  match engine with Paper -> covers_paper s1 s2 | Exact -> covers_exact s1 s2

(* Covering between non-recursive advertisements reuses the subscription
   algorithm (Sec. 4.2 note): a non-recursive advertisement has the form
   of an absolute simple XPE, modulo full-length (not prefix) semantics,
   which makes equal length a requirement. Recursive advertisements use
   the exact engine. *)
let adv_covers (a1 : Adv.t) (a2 : Adv.t) =
  if Adv.is_recursive a1 || Adv.is_recursive a2 then Xroute_automata.Lang.adv_contains a1 a2
  else begin
    let s1 = Adv.to_symbols a1 and s2 = Adv.to_symbols a2 in
    Array.length s1 = Array.length s2
    &&
    let rec go i =
      i >= Array.length s1 || (test_covers s1.(i) s2.(i) && go (i + 1))
    in
    go 0
  end
