(* The content-based XML router (broker).

   A broker holds an SRT and a PRT, talks to neighbor brokers and local
   clients, and implements the routing strategies of the paper's
   evaluation (Tables 2-3):

   - advertisement-based routing on/off: with advertisements,
     subscriptions follow the reverse advertisement paths; without, they
     flood;
   - covering on/off: a covered subscription is stored but not
     forwarded, and forwarding a new subscription unsubscribes the
     maximal subscriptions it covers;
   - merging off / perfect / imperfect: a periodic merge pass replaces
     sets of forwarded subscriptions by mergers (Sec. 4.3); originals
     stay in the local PRT, so false positives die here and never reach
     clients.

   [handle] is a pure-ish state machine: it consumes one message and
   returns the messages to emit, so the overlay simulator (and the
   tests) stay in full control of delivery order and timing. *)

open Xroute_xpath

let log_src = Logs.Src.create "xroute.broker" ~doc:"Content-based XML router"

module Log = (val Logs.src_log log_src : Logs.LOG)

type merge_mode = No_merging | Perfect | Imperfect of float

type strategy = {
  use_adv : bool;  (* advertisement-based subscription routing *)
  use_cover : bool;  (* covering-based forwarding suppression *)
  merging : merge_mode;
  adv_cover : bool;  (* advertisement covering in the SRT (extension) *)
  trail_routing : bool;  (* XTreeNet-style restricted re-matching *)
  exact_engines : bool;  (* automata engines instead of the paper's *)
  srt_index : bool;  (* root-element bucket index in the SRT *)
  match_engine : Rtable.Prt.match_engine;  (* PRT publication matcher *)
}

let default_strategy =
  {
    use_adv = true;
    use_cover = true;
    merging = No_merging;
    adv_cover = false;
    trail_routing = false;
    exact_engines = false;
    srt_index = true;
    match_engine = Rtable.Prt.Nfa;
  }

(* The six rows of Tables 2 and 3. *)
let strategy_of_name = function
  | "no-Adv-no-Cov" -> Some { default_strategy with use_adv = false; use_cover = false }
  | "no-Adv-with-Cov" -> Some { default_strategy with use_adv = false; use_cover = true }
  | "with-Adv-no-Cov" -> Some { default_strategy with use_adv = true; use_cover = false }
  | "with-Adv-with-Cov" -> Some { default_strategy with use_adv = true; use_cover = true }
  | "with-Adv-with-CovPM" -> Some { default_strategy with merging = Perfect }
  | "with-Adv-with-CovIPM" -> Some { default_strategy with merging = Imperfect 0.1 }
  | _ -> None

let strategy_names =
  [
    "no-Adv-no-Cov";
    "no-Adv-with-Cov";
    "with-Adv-no-Cov";
    "with-Adv-with-Cov";
    "with-Adv-with-CovPM";
    "with-Adv-with-CovIPM";
  ]

type counters = {
  mutable msgs_in : int;
  mutable advs_in : int;
  mutable subs_in : int;
  mutable pubs_in : int;
  mutable unsubs_in : int;
  mutable pubs_dropped : int; (* arrived with no matching subscription *)
  mutable deliveries : int; (* publications handed to local clients *)
}

module M = Xroute_obs.Metrics

(* Handles into the broker's metrics registry, resolved once at creation
   so the hot paths never do a name lookup. *)
type meters = {
  m_msgs_in : M.counter;
  m_advs_in : M.counter;
  m_subs_in : M.counter;
  m_pubs_in : M.counter;
  m_unsubs_in : M.counter;
  m_pubs_dropped : M.counter;
  m_deliveries : M.counter;
  m_mergers_applied : M.counter;
  m_srt_match_ops : M.counter; (* mirrors Srt.match_ops *)
  m_prt_match_checks : M.counter; (* mirrors Prt.match_checks *)
  m_prt_cover_checks : M.counter; (* mirrors Prt.cover_checks *)
  m_srt_size : M.gauge;
  m_srt_buckets : M.gauge; (* non-empty SRT root-element buckets *)
  m_srt_bucket_max : M.gauge; (* fullest bucket's occupancy *)
  m_srt_catch_all : M.gauge; (* wildcard/recursive catch-all size *)
  m_prt_size : M.gauge;
  m_prt_payloads : M.gauge;
  m_nfa_states : M.gauge;
  m_forwarded : M.gauge;
  m_mergers_active : M.gauge;
  m_suppressed : M.gauge;
  m_sub_match_ops : M.histogram; (* SRT match ops per subscription *)
  m_pub_match_ops : M.histogram; (* PRT match/cover ops per publication *)
  m_merge_pass_ms : M.histogram;
}

let make_meters reg =
  {
    m_msgs_in = M.counter reg ~help:"Messages handled" "xroute_broker_msgs_in_total";
    m_advs_in = M.counter reg ~help:"Advertisements handled" "xroute_broker_advs_in_total";
    m_subs_in = M.counter reg ~help:"Subscriptions handled" "xroute_broker_subs_in_total";
    m_pubs_in = M.counter reg ~help:"Publications handled" "xroute_broker_pubs_in_total";
    m_unsubs_in = M.counter reg ~help:"Unsubscriptions handled" "xroute_broker_unsubs_in_total";
    m_pubs_dropped =
      M.counter reg ~help:"Publications matching no subscription" "xroute_broker_pubs_dropped_total";
    m_deliveries =
      M.counter reg ~help:"Publications handed to local clients" "xroute_broker_deliveries_total";
    m_mergers_applied =
      M.counter reg ~help:"Mergers created by merge passes" "xroute_broker_mergers_applied_total";
    m_srt_match_ops =
      M.counter reg ~help:"SRT advertisement match operations" "xroute_srt_match_ops_total";
    m_prt_match_checks =
      M.counter reg ~help:"PRT publication match checks" "xroute_prt_match_checks_total";
    m_prt_cover_checks =
      M.counter reg ~help:"PRT covering checks" "xroute_prt_cover_checks_total";
    m_srt_size = M.gauge reg ~help:"SRT entries" "xroute_srt_size";
    m_srt_buckets =
      M.gauge reg ~help:"Non-empty SRT root-element buckets" "xroute_srt_buckets";
    m_srt_bucket_max =
      M.gauge reg ~help:"Occupancy of the fullest SRT bucket" "xroute_srt_bucket_max";
    m_srt_catch_all =
      M.gauge reg ~help:"SRT wildcard/recursive catch-all entries" "xroute_srt_catch_all";
    m_prt_size = M.gauge reg ~help:"PRT distinct XPEs" "xroute_prt_size";
    m_prt_payloads = M.gauge reg ~help:"PRT stored payloads" "xroute_prt_payloads";
    m_nfa_states = M.gauge reg ~help:"PRT NFA automaton states" "xroute_nfa_states";
    m_forwarded =
      M.gauge reg ~help:"Subscriptions forwarded upstream" "xroute_broker_forwarded_subs";
    m_mergers_active = M.gauge reg ~help:"Active mergers" "xroute_broker_mergers_active";
    m_suppressed =
      M.gauge reg ~help:"Subscriptions suppressed by a merger" "xroute_broker_suppressed_subs";
    m_sub_match_ops =
      M.histogram reg ~help:"SRT match ops per subscription" "xroute_srt_sub_match_ops";
    m_pub_match_ops =
      M.histogram reg ~help:"PRT match/cover ops per publication" "xroute_prt_pub_match_ops";
    m_merge_pass_ms =
      M.histogram reg ~help:"Merge pass CPU time (ms)" "xroute_broker_merge_pass_ms";
  }

type merger_record = {
  merger_id : Message.sub_id;
  merger_xpe : Xpe.t;
  member_ids : Message.sub_id list;
}

type t = {
  id : int;
  strategy : strategy;
  covers : Xpe.t -> Xpe.t -> bool; (* the covering predicate in force *)
  neighbors : int list;
  srt : Rtable.Srt.t;
  prt : Rtable.Prt.t;
  (* where each subscription id was forwarded (undone on unsubscribe) *)
  mutable forwarded : Rtable.endpoint list Rtable.Prt.Id_map.t;
  (* per-XPE index over [forwarded]: for each stored XPE (keyed by its
     printed form, the same key that dedups equal XPEs onto one PRT
     node), the subscription ids stored there whose forwarded-target
     set is non-empty. Lets [served_endpoints] consult a coverer node
     without scanning its payload list, which is one entry per
     subscriber on a popular XPE. *)
  fwd_active : (string, Message.sub_id list) Hashtbl.t;
  (* merge bookkeeping *)
  mutable mergers : merger_record list;
  mutable suppressed : Rtable.Prt.Id_map.key list; (* ids replaced by a merger *)
  mutable merge_seq : int;
  (* path universe for the imperfect degree (publisher DTD knowledge) *)
  mutable universe : string array list;
  counters : counters;
  metrics : M.t;
  meters : meters;
}

let create ?(strategy = default_strategy) ~id ~neighbors () =
  let covers =
    if not strategy.use_cover then fun _ _ -> false
    else if strategy.exact_engines then fun s1 s2 -> Cover.covers ~engine:Cover.Exact s1 s2
    else fun s1 s2 -> Cover.covers s1 s2
  in
  let flat = not strategy.use_cover in
  let engine = if strategy.exact_engines then Adv_match.Exact else Adv_match.Paper in
  let metrics = M.create () in
  {
    id;
    strategy;
    covers;
    neighbors;
    srt = Rtable.Srt.create ~use_cover:strategy.adv_cover ~engine ~indexed:strategy.srt_index ();
    prt = Rtable.Prt.create ~flat ~covers ~engine:strategy.match_engine ();
    forwarded = Rtable.Prt.Id_map.empty;
    fwd_active = Hashtbl.create 64;
    mergers = [];
    suppressed = [];
    merge_seq = 0;
    universe = [];
    counters =
      {
        msgs_in = 0;
        advs_in = 0;
        subs_in = 0;
        pubs_in = 0;
        unsubs_in = 0;
        pubs_dropped = 0;
        deliveries = 0;
      };
    metrics;
    meters = make_meters metrics;
  }

let id t = t.id
let strategy t = t.strategy
let counters t = t.counters
let metrics t = t.metrics
let srt_size t = Rtable.Srt.size t.srt
let prt_size t = Rtable.Prt.size t.prt
let set_universe t universe = t.universe <- universe

(* Match-work performed so far: the quantity the processing-delay model
   charges for (covering shrinks it). *)
let work t =
  Rtable.Srt.match_ops t.srt + Rtable.Prt.match_checks t.prt + Rtable.Prt.cover_checks t.prt

(* The same cumulative work split by table/stage — (SRT match ops, PRT
   match checks, PRT cover checks) — so the transport can size per-stage
   spans from before/after deltas. Sums to {!work}. *)
let stage_ops t =
  (Rtable.Srt.match_ops t.srt, Rtable.Prt.match_checks t.prt, Rtable.Prt.cover_checks t.prt)

(* Push the derived quantities — index sizes as gauges, the tables'
   cumulative match counters — into the registry. Call before export;
   the event counters and histograms are maintained inline. *)
let refresh_metrics t =
  let m = t.meters in
  M.counter_set m.m_srt_match_ops (Rtable.Srt.match_ops t.srt);
  M.counter_set m.m_prt_match_checks (Rtable.Prt.match_checks t.prt);
  M.counter_set m.m_prt_cover_checks (Rtable.Prt.cover_checks t.prt);
  M.set_int m.m_srt_size (Rtable.Srt.size t.srt);
  M.set_int m.m_srt_buckets (Rtable.Srt.bucket_count t.srt);
  M.set_int m.m_srt_bucket_max (Rtable.Srt.max_bucket_size t.srt);
  M.set_int m.m_srt_catch_all (Rtable.Srt.catch_all_size t.srt);
  M.set_int m.m_prt_size (Rtable.Prt.size t.prt);
  M.set_int m.m_prt_payloads (Rtable.Prt.payload_count t.prt);
  M.set_int m.m_nfa_states (Rtable.Prt.nfa_states t.prt);
  M.set_int m.m_forwarded (Rtable.Prt.Id_map.cardinal t.forwarded);
  M.set_int m.m_mergers_active (List.length t.mergers);
  M.set_int m.m_suppressed (List.length t.suppressed)

let corrupt_nfa_for_test t = Rtable.Prt.plant_nfa_orphan t.prt

let neighbor_endpoints ?(except = []) t =
  List.filter_map
    (fun n ->
      let ep = Rtable.Neighbor n in
      if List.exists (Rtable.endpoint_equal ep) except then None else Some ep)
    t.neighbors

let is_neighbor_ep = function Rtable.Neighbor _ -> true | Rtable.Client _ -> false

(* [fwd_active] maintenance. The invariant: a tree payload's id is in
   its node's bucket iff its forwarded-target set is non-empty. Merger
   ids never enter (they have no tree node; [served_endpoints] walks
   [t.mergers] directly). Buckets hold the few actual forwarders of a
   node — typically one — so the list operations here are O(1). *)
let fwd_active_add t xpe id =
  let key = Xpe.to_string xpe in
  let ids = Option.value ~default:[] (Hashtbl.find_opt t.fwd_active key) in
  if not (List.exists (fun i -> Message.compare_sub_id i id = 0) ids) then
    Hashtbl.replace t.fwd_active key (id :: ids)

let fwd_active_remove t xpe id =
  let key = Xpe.to_string xpe in
  match Hashtbl.find_opt t.fwd_active key with
  | None -> ()
  | Some ids -> (
    match List.filter (fun i -> Message.compare_sub_id i id <> 0) ids with
    | [] -> Hashtbl.remove t.fwd_active key
    | kept -> Hashtbl.replace t.fwd_active key kept)

(* Re-sync one id's index entry from the forwarded map; for ids with no
   tree node (mergers, already-removed subscriptions) this is a no-op. *)
let fwd_active_sync t sub_id =
  match Rtable.Prt.find t.prt sub_id with
  | None -> ()
  | Some (node, _) ->
    let xpe = Sub_tree.node_xpe node in
    (match Rtable.Prt.Id_map.find_opt sub_id t.forwarded with
    | Some (_ :: _) -> fwd_active_add t xpe sub_id
    | Some [] | None -> fwd_active_remove t xpe sub_id)

let record_forwarded t sub_id targets =
  let existing =
    Option.value ~default:[] (Rtable.Prt.Id_map.find_opt sub_id t.forwarded)
  in
  let added =
    List.filter
      (fun ep -> not (List.exists (Rtable.endpoint_equal ep) existing))
      targets
  in
  t.forwarded <- Rtable.Prt.Id_map.add sub_id (added @ existing) t.forwarded;
  if added <> [] || existing <> [] then fwd_active_sync t sub_id;
  added

let forwarded_targets t sub_id =
  Option.value ~default:[] (Rtable.Prt.Id_map.find_opt sub_id t.forwarded)

let is_suppressed t id =
  List.exists (fun i -> Message.compare_sub_id i id = 0) t.suppressed

(* Targets a subscription should be forwarded to (before covering
   decisions): matching advertisement hops, or all neighbors when not
   advertisement-based. Never back to where it came from; never to
   clients. *)
let sub_targets t ~from xpe =
  let raw =
    if t.strategy.use_adv then Rtable.Srt.hops_for_sub t.srt xpe
    else neighbor_endpoints t
  in
  List.filter
    (fun ep -> is_neighbor_ep ep && not (Rtable.endpoint_equal ep from))
    raw

(* Covering-based suppression is per next hop: forwarding [xpe] to [ep]
   is redundant exactly when some other subscription covering [xpe] has
   already been forwarded to [ep] (a coverer from the direction of [ep]
   itself draws no publications from there, hence "other" and
   "forwarded"). Active mergers count as coverers of their members. *)

(* Endpoints already served for [xpe] by some other subscription or
   merger: the union of the coverers' forwarded-target sets. Coverer
   nodes are consulted through [fwd_active] rather than their payload
   lists: payloads with nothing forwarded contribute nothing to the
   union, so the served set is unchanged, and a hot node with thousands
   of equal subscribers costs one index lookup instead of a scan. *)
let served_endpoints t ~self_id xpe =
  if not t.strategy.use_cover then []
  else begin
    let from_tree =
      List.concat_map
        (fun node ->
          match Hashtbl.find_opt t.fwd_active (Xpe.to_string (Sub_tree.node_xpe node)) with
          | None -> []
          | Some ids ->
            List.concat_map
              (fun id ->
                if Message.compare_sub_id id self_id = 0 then []
                else forwarded_targets t id)
              ids)
        (Sub_tree.coverers (Rtable.Prt.tree t.prt) xpe)
    in
    let from_mergers =
      List.concat_map
        (fun m ->
          if t.covers m.merger_xpe xpe then forwarded_targets t m.merger_id else [])
        t.mergers
    in
    from_tree @ from_mergers
  end

let served_at t ~self_id xpe ep =
  List.exists (Rtable.endpoint_equal ep) (served_endpoints t ~self_id xpe)

let unserved_targets t ~self_id xpe targets =
  match targets with
  | [] -> []
  | targets ->
    let served = served_endpoints t ~self_id xpe in
    List.filter (fun ep -> not (List.exists (Rtable.endpoint_equal ep) served)) targets

(* ------------------------------------------------------------------ *)
(* Advertisements                                                      *)
(* ------------------------------------------------------------------ *)

let handle_advertise t ~from id adv =
  t.counters.advs_in <- t.counters.advs_in + 1;
  M.incr t.meters.m_advs_in;
  match Rtable.Srt.add t.srt id adv from with
  | `Duplicate -> []
  | `Covered _ -> [] (* advertisement covering suppressed storage and forwarding *)
  | `Stored ->
    (* Flood on. *)
    let flood =
      List.map
        (fun ep -> (ep, Message.Advertise { id; adv }))
        (neighbor_endpoints ~except:[ from ] t)
    in
    (* Forward stored subscriptions that overlap the new advertisement
       towards it (otherwise subscribers that registered first would
       never reach this publisher). Only the forwarded set needs to go:
       maximal subscriptions plus active mergers. *)
    let sub_msgs =
      if not t.strategy.use_adv then []
      else if not (is_neighbor_ep from) then []
      else begin
        (* Every stored subscription may need to reach the new
           advertiser; visiting parents before children lets coverers be
           forwarded first and then suppress their covered subtrees via
           the per-target rule. *)
        let candidates = ref [] in
        Sub_tree.iter
          (fun node ->
            List.iter
              (fun (p : Rtable.Prt.payload) ->
                if not (is_suppressed t p.id) then
                  candidates := (p.id, Sub_tree.node_xpe node, p.hop) :: !candidates)
              (Sub_tree.node_payloads node))
          (Rtable.Prt.tree t.prt);
        let candidates =
          List.rev !candidates
          @ List.map (fun m -> (m.merger_id, m.merger_xpe, Rtable.Neighbor t.id)) t.mergers
        in
        List.filter_map
          (fun (sub_id, xpe, hop) ->
            if Rtable.endpoint_equal hop from then None
            else if List.exists (Rtable.endpoint_equal from) (forwarded_targets t sub_id) then
              None
            else begin
              let engine = if t.strategy.exact_engines then Adv_match.Exact else Adv_match.Paper in
              if Adv_match.overlaps ~engine xpe adv && not (served_at t ~self_id:sub_id xpe from)
              then begin
                ignore (record_forwarded t sub_id [ from ]);
                Some (from, Message.Subscribe { id = sub_id; xpe })
              end
              else None
            end)
          candidates
      end
    in
    flood @ sub_msgs

let handle_unadvertise t ~from id =
  match Rtable.Srt.remove t.srt id with
  | None -> []
  | Some _ ->
    List.map
      (fun ep -> (ep, Message.Unadvertise { id }))
      (neighbor_endpoints ~except:[ from ] t)

(* ------------------------------------------------------------------ *)
(* Subscriptions                                                       *)
(* ------------------------------------------------------------------ *)

let handle_subscribe t ~from id xpe =
  t.counters.subs_in <- t.counters.subs_in + 1;
  M.incr t.meters.m_subs_in;
  if Rtable.Prt.mem t.prt id then [] (* duplicate *)
  else begin
    (* Subscriptions this one strictly covers (equal XPEs are kept:
       they already serve their targets). Computed before insertion.
       The equal node is dropped before its payloads are expanded — on
       a popular XPE it holds one payload per subscriber, and
       materializing them per arrival made subscribing quadratic. *)
    let displaced =
      if t.strategy.use_cover then
        Sub_tree.covered_roots (Rtable.Prt.tree t.prt) xpe
        |> List.concat_map (fun node ->
               if Xpe.equal (Sub_tree.node_xpe node) xpe then []
               else List.map (fun p -> (node, p)) (Sub_tree.node_payloads node))
      else []
    in
    let targets = sub_targets t ~from xpe in
    let needed = unserved_targets t ~self_id:id xpe targets in
    ignore (Rtable.Prt.insert t.prt id xpe from);
    let fresh = record_forwarded t id needed in
    let sub_msgs = List.map (fun ep -> (ep, Message.Subscribe { id; xpe })) fresh in
    (* Unsubscribe displaced subscriptions, but only at next hops now
       served by this subscription (elsewhere they must keep drawing
       publications for their own subscribers). *)
    let mine = forwarded_targets t id in
    let unsub_msgs =
      List.concat_map
        (fun (node, (p : Rtable.Prt.payload)) ->
          if is_suppressed t p.id then []
          else begin
            let where = forwarded_targets t p.id in
            let redundant, kept =
              List.partition (fun ep -> List.exists (Rtable.endpoint_equal ep) mine) where
            in
            t.forwarded <- Rtable.Prt.Id_map.add p.id kept t.forwarded;
            if kept = [] then fwd_active_remove t (Sub_tree.node_xpe node) p.id;
            List.map (fun ep -> (ep, Message.Unsubscribe { id = p.id })) redundant
          end)
        displaced
    in
    sub_msgs @ unsub_msgs
  end

let handle_unsubscribe t ~from id =
  t.counters.unsubs_in <- t.counters.unsubs_in + 1;
  M.incr t.meters.m_unsubs_in;
  ignore from;
  match Rtable.Prt.remove t.prt id with
  | None -> []
  | Some (_payload, node, _was_sole_maximal, _children) ->
    let removed_xpe = Sub_tree.node_xpe node in
    let where = forwarded_targets t id in
    t.forwarded <- Rtable.Prt.Id_map.remove id t.forwarded;
    fwd_active_remove t removed_xpe id;
    let upstream = List.map (fun ep -> (ep, Message.Unsubscribe { id })) where in
    (* Every subscription the departed one covered — its former children,
       equal subscriptions sharing its node, and covered subscriptions in
       other subtrees (the super-pointer relations) — may have relied on
       its forwarding; re-forward each wherever it is no longer served.
       Only needed when the departed subscription was forwarded at all. *)
    let reforward_msgs =
      if (not t.strategy.use_cover) || where = [] then []
      else begin
        let reforward_node n =
          let xpe = Sub_tree.node_xpe n in
          List.concat_map
            (fun (p : Rtable.Prt.payload) ->
              if is_suppressed t p.id then []
              else begin
                let targets = sub_targets t ~from:p.hop xpe in
                let needed = unserved_targets t ~self_id:p.id xpe targets in
                let fresh = record_forwarded t p.id needed in
                List.map (fun ep -> (ep, Message.Subscribe { id = p.id; xpe })) fresh
              end)
            (Sub_tree.node_payloads n)
        in
        List.concat_map reforward_node
          (Sub_tree.covered_nodes (Rtable.Prt.tree t.prt) removed_xpe)
      end
    in
    upstream @ reforward_msgs

(* ------------------------------------------------------------------ *)
(* Publications                                                        *)
(* ------------------------------------------------------------------ *)

(* The routing tail of publication handling, shared between the
   sequential path (payloads from the authoritative PRT, above) and the
   domain pool (payloads matched on a worker shard): group matched
   subscription ids by next hop (for trails), account drops and
   deliveries, and emit one Publish per hop. The trace context [ctx] is
   copied verbatim onto every output: the broker decides routing, the
   transport decides spans (and rewrites [parent_span] to the hop span
   it opens before forwarding). *)
let route_payloads t ~from pub ctx payloads =
  let by_hop : (Rtable.endpoint * Message.sub_id list ref) list ref = ref [] in
  (* Hop lookup by hashing, not an assoc scan: at an edge broker every
     local subscriber is a distinct hop, so the scan was quadratic in
     matched payloads. [by_hop] still records first-encounter order —
     the emitted message order is unchanged. *)
  let seen : (Rtable.endpoint, Message.sub_id list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (p : Rtable.Prt.payload) ->
      if not (Rtable.endpoint_equal p.hop from) then begin
        match Hashtbl.find_opt seen p.hop with
        | Some ids -> ids := p.id :: !ids
        | None ->
          let ids = ref [ p.id ] in
          Hashtbl.add seen p.hop ids;
          by_hop := (p.hop, ids) :: !by_hop
      end)
    payloads;
  if !by_hop = [] then begin
    t.counters.pubs_dropped <- t.counters.pubs_dropped + 1;
    M.incr t.meters.m_pubs_dropped
  end;
  List.map
    (fun (ep, ids) ->
      (match ep with
      | Rtable.Client _ ->
        t.counters.deliveries <- t.counters.deliveries + 1;
        M.incr t.meters.m_deliveries
      | Rtable.Neighbor _ -> ());
      let trail = if t.strategy.trail_routing && is_neighbor_ep ep then !ids else [] in
      (ep, Message.Publish { pub; trail; ctx }))
    !by_hop

let handle_publish t ~from pub trail ctx =
  t.counters.pubs_in <- t.counters.pubs_in + 1;
  M.incr t.meters.m_pubs_in;
  let payloads =
    if t.strategy.trail_routing && trail <> [] then Rtable.Prt.match_pub_from t.prt trail pub
    else Rtable.Prt.match_pub t.prt pub
  in
  route_payloads t ~from pub ctx payloads

(* Pool entry point: the publication was decoded and matched on a
   worker shard; finish it on the main domain exactly as [handle] on a
   Publish would — message/publication accounting, the match-ops
   histogram observation (with the shard's examined-entry count), then
   the shared routing tail. Counters and metrics stay main-domain-only. *)
let route_publication t ~from ~pub ~ctx ~payloads ~match_ops =
  t.counters.msgs_in <- t.counters.msgs_in + 1;
  M.incr t.meters.m_msgs_in;
  t.counters.pubs_in <- t.counters.pubs_in + 1;
  M.incr t.meters.m_pubs_in;
  M.observe t.meters.m_pub_match_ops (float_of_int match_ops);
  Log.debug (fun m ->
      m "broker %d <- %a: publish %d.%d (pooled)" t.id Rtable.pp_endpoint from
        pub.Xroute_xml.Xml_paths.doc_id pub.Xroute_xml.Xml_paths.path_id);
  route_payloads t ~from pub ctx payloads

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let handle t ~from (msg : Message.t) =
  t.counters.msgs_in <- t.counters.msgs_in + 1;
  M.incr t.meters.m_msgs_in;
  Log.debug (fun m ->
      m "broker %d <- %a: %a" t.id Rtable.pp_endpoint from Message.pp msg);
  let srt0 = Rtable.Srt.match_ops t.srt in
  let prt0 = Rtable.Prt.match_checks t.prt + Rtable.Prt.cover_checks t.prt in
  let outs =
    match msg with
    | Message.Advertise { id; adv } -> handle_advertise t ~from id adv
    | Message.Unadvertise { id } -> handle_unadvertise t ~from id
    | Message.Subscribe { id; xpe } -> handle_subscribe t ~from id xpe
    | Message.Unsubscribe { id } -> handle_unsubscribe t ~from id
    | Message.Publish { pub; trail; ctx } -> handle_publish t ~from pub trail ctx
  in
  (match msg with
  | Message.Subscribe _ ->
    M.observe t.meters.m_sub_match_ops (float_of_int (Rtable.Srt.match_ops t.srt - srt0))
  | Message.Publish _ ->
    let prt1 = Rtable.Prt.match_checks t.prt + Rtable.Prt.cover_checks t.prt in
    M.observe t.meters.m_pub_match_ops (float_of_int (prt1 - prt0))
  | Message.Advertise _ | Message.Unadvertise _ | Message.Unsubscribe _ -> ());
  outs

(* ------------------------------------------------------------------ *)
(* Merging pass                                                        *)
(* ------------------------------------------------------------------ *)

(* Periodic merging (Sec. 4.3): replace forwarded subscriptions by
   mergers within the configured imperfect degree. Originals stay in the
   PRT for exact local delivery; upstream they are unsubscribed and the
   merger subscribed in their place. *)
let merge_pass t =
  match t.strategy.merging with
  | No_merging -> []
  | mode ->
    let t_start = Sys.time () in
    Fun.protect
      ~finally:(fun () ->
        M.observe t.meters.m_merge_pass_ms ((Sys.time () -. t_start) *. 1000.0))
    @@ fun () ->
    let max_degree = match mode with Perfect -> 0.0 | Imperfect d -> d | No_merging -> 0.0 in
    (* Mergeable population: maximal, not suppressed, forwarded somewhere. *)
    let population =
      Sub_tree.maximal (Rtable.Prt.tree t.prt)
      |> List.concat_map (fun node ->
             List.filter_map
               (fun (p : Rtable.Prt.payload) ->
                 if is_suppressed t p.id then None
                 else if forwarded_targets t p.id = [] then None
                 else Some (Sub_tree.node_xpe node, p.id))
               (Sub_tree.node_payloads node))
    in
    let xpes = List.sort_uniq Xpe.compare (List.map fst population) in
    let applied, _kept = Merge.merge_set ~max_degree ~universe:t.universe xpes in
    List.concat_map
      (fun (m : Merge.merger) ->
        let member_ids =
          List.filter_map
            (fun (xpe, sub_id) ->
              if List.exists (Xpe.equal xpe) m.originals then Some sub_id else None)
            population
        in
        if List.length member_ids < 2 then []
        else begin
          t.merge_seq <- t.merge_seq + 1;
          let merger_id = { Message.origin = (t.id * 1_000_000) + 999_000; seq = t.merge_seq } in
          let record = { merger_id; merger_xpe = m.xpe; member_ids } in
          t.mergers <- record :: t.mergers;
          M.incr t.meters.m_mergers_applied;
          t.suppressed <- member_ids @ t.suppressed;
          (* Subscribe the merger along its own (unserved) targets. *)
          let targets = sub_targets t ~from:(Rtable.Neighbor t.id) m.xpe in
          let targets = unserved_targets t ~self_id:merger_id m.xpe targets in
          let fresh = record_forwarded t merger_id targets in
          let sub_msgs =
            List.map (fun ep -> (ep, Message.Subscribe { id = merger_id; xpe = m.xpe })) fresh
          in
          (* Unsubscribe the originals wherever they had been forwarded. *)
          let unsub_msgs =
            List.concat_map
              (fun sub_id ->
                let where = forwarded_targets t sub_id in
                t.forwarded <- Rtable.Prt.Id_map.remove sub_id t.forwarded;
                fwd_active_sync t sub_id;
                List.map (fun ep -> (ep, Message.Unsubscribe { id = sub_id })) where)
              member_ids
          in
          sub_msgs @ unsub_msgs
        end)
      applied

(* Forwarded routing table size: what this broker's upstream neighbors
   store because of it — the paper's compaction metric counts the local
   table instead, which [prt_size] reports. *)
let forwarded_count t = Rtable.Prt.Id_map.cardinal t.forwarded

(* ------------------------------------------------------------------ *)
(* Crash recovery (fault injection)                                    *)
(* ------------------------------------------------------------------ *)

let srt_ids_from t ep = Rtable.Srt.ids_from t.srt ep
let srt_ids t = List.map (fun (e : Rtable.Srt.entry) -> e.id) (Rtable.Srt.entries t.srt)

let prt_fold t f =
  let acc = ref [] in
  Sub_tree.iter
    (fun node ->
      List.iter
        (fun (p : Rtable.Prt.payload) -> match f p with Some x -> acc := x :: !acc | None -> ())
        (Sub_tree.node_payloads node))
    (Rtable.Prt.tree t.prt);
  List.rev !acc

let prt_ids t = prt_fold t (fun p -> Some p.id)
let prt_mem t id = Rtable.Prt.mem t.prt id

let prt_ids_from t ep =
  prt_fold t (fun p -> if Rtable.endpoint_equal p.hop ep then Some p.id else None)

(* ------------------------------------------------------------------ *)
(* Audit view (static analysis)                                        *)
(* ------------------------------------------------------------------ *)

(* Read-only snapshot of the routing state for the invariant checks in
   [Xroute_check.Check]. Everything the analyzer needs crosses here, so
   the broker internals stay private; the closures close over the live
   tables, so take the view and use it in one go. *)
type audit_view = {
  av_id : int;
  av_strategy : strategy;
  av_neighbors : int list;
  av_srt_entries : Rtable.Srt.entry list;
  av_srt_invariants : string list; (* Rtable.Srt.check_invariants *)
  av_prt_invariants : string list; (* Sub_tree.check_invariants *)
  av_nfa_invariants : string list; (* Rtable.Prt.nfa_invariants *)
  av_subs : (Message.sub_id * Xpe.t * Rtable.endpoint) list; (* stored payloads *)
  av_forwarded : (Message.sub_id * Rtable.endpoint list) list;
  av_mergers : (Message.sub_id * Xpe.t * Message.sub_id list) list;
      (* merger id, merger XPE, suppressed member ids *)
  av_suppressed : Message.sub_id list;
  av_covers : Xpe.t -> Xpe.t -> bool; (* the covering predicate in force *)
  av_required_targets : Xpe.t -> Rtable.endpoint list;
      (* neighbor hops a subscription must reach under the current SRT
         (all neighbors under flooding); does not charge match_ops *)
}

let audit_view t =
  let engine = if t.strategy.exact_engines then Adv_match.Exact else Adv_match.Paper in
  let required_targets xpe =
    let raw =
      if t.strategy.use_adv then
        List.filter_map
          (fun (e : Rtable.Srt.entry) ->
            if Adv_match.overlaps ~engine xpe e.adv then Some e.hop else None)
          (Rtable.Srt.entries t.srt)
      else neighbor_endpoints t
    in
    List.fold_left
      (fun acc ep ->
        if is_neighbor_ep ep && not (List.exists (Rtable.endpoint_equal ep) acc) then
          ep :: acc
        else acc)
      [] raw
    |> List.rev
  in
  let subs = ref [] in
  Sub_tree.iter
    (fun node ->
      List.iter
        (fun (p : Rtable.Prt.payload) ->
          subs := (p.id, Sub_tree.node_xpe node, p.hop) :: !subs)
        (Sub_tree.node_payloads node))
    (Rtable.Prt.tree t.prt);
  {
    av_id = t.id;
    av_strategy = t.strategy;
    av_neighbors = t.neighbors;
    av_srt_entries = Rtable.Srt.entries t.srt;
    av_srt_invariants = Rtable.Srt.check_invariants t.srt;
    av_prt_invariants = Sub_tree.check_invariants (Rtable.Prt.tree t.prt);
    av_nfa_invariants = Rtable.Prt.nfa_invariants t.prt;
    av_subs = List.rev !subs;
    av_forwarded = Rtable.Prt.Id_map.bindings t.forwarded;
    av_mergers = List.map (fun m -> (m.merger_id, m.merger_xpe, m.member_ids)) t.mergers;
    av_suppressed = t.suppressed;
    av_covers = t.covers;
    av_required_targets = required_targets;
  }

(* The peer behind [ep] crashed and restarted empty-handed: forget
   everything learned from it, and everything sent to it. Routing state
   is rebuilt from the survivors (see [resync_for]), never resurrected
   from the dead process. Forwarded-target records pointing at [ep] are
   dropped first so the purge's upstream unsubscriptions skip [ep] and
   the resync pass re-sends what the fresh peer needs; then SRT entries
   learned from [ep] leave through the normal unadvertise flood and PRT
   entries through the unsubscribe path, which re-forwards the covered
   survivors they were shadowing. *)
let neighbor_reset t ~ep =
  let emptied = ref [] in
  t.forwarded <-
    Rtable.Prt.Id_map.filter_map
      (fun id targets ->
        match List.filter (fun e -> not (Rtable.endpoint_equal e ep)) targets with
        | [] ->
          emptied := id :: !emptied;
          None
        | kept -> Some kept)
      t.forwarded;
  List.iter (fun id -> fwd_active_sync t id) !emptied;
  let stale_advs = srt_ids_from t ep in
  let stale_subs = prt_ids_from t ep in
  Log.info (fun m ->
      m "broker %d: resetting %a (%d advs, %d subs purged)" t.id Rtable.pp_endpoint ep
        (List.length stale_advs) (List.length stale_subs));
  List.concat_map (fun id -> handle_unadvertise t ~from:ep id) stale_advs
  @ List.concat_map (fun id -> handle_unsubscribe t ~from:ep id) stale_subs

(* Re-send the state a freshly restarted [ep] needs from this side of
   the network: every surviving advertisement (under advertisement
   routing the re-advertisements make the far side re-forward its
   overlapping subscriptions, so subscriptions need no special casing),
   plus — under flooding, where no advertisement will trigger it —
   direct re-forwarding of stored subscriptions toward [ep]. Call after
   [neighbor_reset] so decisions use the purged tables. *)
let resync_for t ~ep =
  let adv_msgs =
    List.filter_map
      (fun (e : Rtable.Srt.entry) ->
        if Rtable.endpoint_equal e.hop ep then None
        else Some (ep, Message.Advertise { id = e.id; adv = e.adv }))
      (List.rev (Rtable.Srt.entries t.srt))
  in
  let sub_msgs =
    if t.strategy.use_adv then []
    else begin
      let msgs = ref [] in
      (* Parents before children, as in [handle_advertise]: coverers are
         forwarded first and then suppress their subtrees per target. *)
      let candidate sub_id xpe hop =
        if
          (not (is_suppressed t sub_id))
          && (not (Rtable.endpoint_equal hop ep))
          && (not (List.exists (Rtable.endpoint_equal ep) (forwarded_targets t sub_id)))
          && List.exists (Rtable.endpoint_equal ep) (sub_targets t ~from:hop xpe)
          && not (served_at t ~self_id:sub_id xpe ep)
        then begin
          ignore (record_forwarded t sub_id [ ep ]);
          msgs := (ep, Message.Subscribe { id = sub_id; xpe }) :: !msgs
        end
      in
      Sub_tree.iter
        (fun node ->
          List.iter
            (fun (p : Rtable.Prt.payload) -> candidate p.id (Sub_tree.node_xpe node) p.hop)
            (Sub_tree.node_payloads node))
        (Rtable.Prt.tree t.prt);
      List.iter
        (fun m -> candidate m.merger_id m.merger_xpe (Rtable.Neighbor t.id))
        t.mergers;
      List.rev !msgs
    end
  in
  adv_msgs @ sub_msgs
