(** The subscription tree with super pointers (Sec. 4.1): every node's
    XPE covers its whole subtree; super pointers record covering
    relations that cross subtrees. Payloads of type ['a] (e.g. routing
    last-hops) accumulate on nodes; equal XPEs share a node when found on
    the covering descent path. *)

open Xroute_xpath

type 'a node
type 'a t

(** [create ~covers ()] builds an empty tree using the given covering
    predicate (defaults to the paper engine {!Cover.covers}). With
    [~flat:true] the tree degenerates to the no-covering baseline: O(1)
    insertion under the root, no covering relations reported. *)
val create : ?flat:bool -> ?covers:(Xpe.t -> Xpe.t -> bool) -> unit -> 'a t

(** Stored subscription count. *)
val size : 'a t -> int

(** The virtual root (no subscription). *)
val root : 'a t -> 'a node

(** Number of covering tests performed so far (metrics). *)
val cover_checks : 'a t -> int

(** Number of publication match tests performed so far (metrics). *)
val match_checks : 'a t -> int

val node_xpe : 'a node -> Xpe.t
val node_payloads : 'a node -> 'a list
val node_children : 'a node -> 'a node list
val node_supers : 'a node -> 'a node list
val is_root : 'a node -> bool

(** Iterate over all stored nodes (virtual root excluded). *)
val iter : ('a node -> unit) -> 'a t -> unit

val fold : ('b -> 'a node -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a node list

(** Depth-1 nodes: the maximal stored subscriptions — exactly the set a
    covering-based router forwards. *)
val maximal : 'a t -> 'a node list

(** Height of the tree (0 when empty). *)
val depth : 'a t -> int

(** Stored node with an XPE equal to the argument (hash lookup: equal
    XPEs always share one node). *)
val find_equal : 'a t -> Xpe.t -> 'a node option

(** Is the XPE covered by (or equal to) a stored subscription? Complete:
    decided on the depth-1 fringe by transitivity of covering. *)
val is_covered : 'a t -> Xpe.t -> bool

(** Depth-1 nodes covered by the XPE — the previously forwarded
    subscriptions to unsubscribe when this one takes over. *)
val covered_roots : 'a t -> Xpe.t -> 'a node list

(** All stored nodes covered by the XPE (subtrees plus super-pointer
    targets). *)
val covered_nodes : 'a t -> Xpe.t -> 'a node list

(** Insert a subscription; returns its node (an existing one when an
    equal XPE is already stored — the payload is appended). *)
val insert : 'a t -> Xpe.t -> 'a -> 'a node

(** Record an extra covering relation as a super pointer. *)
val add_super : 'a node -> 'a node -> unit

(** Delete a node; its children are promoted to its parent.
    @raise Invalid_argument on the virtual root. *)
val remove_node : 'a t -> 'a node -> unit

(** Remove one payload occurrence (physical equality); deletes the node
    when its last payload goes. *)
val remove_payload : 'a t -> 'a node -> 'a -> unit

(** Payloads of all nodes matching the publication path (interned),
    pruning a subtree as soon as its root fails to match. *)
val match_syms :
  'a t -> Xroute_support.Symbol.t array -> (string * string) list array -> 'a list

(** {!match_syms} after interning the element names. *)
val match_path : 'a t -> string array -> (string * string) list array -> 'a list

(** {!match_path} on a bare name path. *)
val match_names : 'a t -> string array -> 'a list

(** Exhaustive (unpruned) matching, for baselines and cross-checks. *)
val match_syms_linear :
  'a t -> Xroute_support.Symbol.t array -> (string * string) list array -> 'a list

val match_path_linear : 'a t -> string array -> (string * string) list array -> 'a list

(** Structural invariant violations (empty when healthy). *)
val check_invariants : 'a t -> string list

(** All stored nodes whose XPE covers the argument (equality included). *)
val coverers : 'a t -> Xpe.t -> 'a node list

(** Total payloads stored ({!size} counts distinct XPEs; equal XPEs share
    one node). *)
val payload_count : 'a t -> int
