(** Wire codec for {!Message.t}: a compact, versioned, line-oriented text
    format with percent-escaping, independent of OCaml's marshaller. One
    message per line; see the implementation header for the grammar. *)

type error = { offset : int; reason : string }

val pp_error : Format.formatter -> error -> unit

(** Current format version (the first field of every message). *)
val version : int

(** Encode to a single line (no trailing newline). *)
val encode : Message.t -> string

(** Decode one line. *)
val decode : string -> (Message.t, error) result

(** Undo the percent-escaping of a single field. Exposed for the
    daemon's cheap publication classifier, which extracts the root
    element from the raw wire line without a full decode. *)
val unescape : string -> (string, string) result

(** @raise Failure on malformed input. *)
val decode_exn : string -> Message.t
