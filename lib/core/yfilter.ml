(* YFilter-style shared-prefix NFA index over a subscription set.

   The paper's evaluation contrasts its covering-organized routing table
   with YFilter (Diao et al.), the classic NFA-based XML filter: all
   XPEs are compiled into one automaton sharing common prefixes, and a
   publication is matched by simulating the automaton once, regardless
   of how many subscriptions are stored. Since PR 6 this is the primary
   match engine behind [Rtable.Prt] (gated by the differential harness),
   not just a baseline.

   Because publications here are root-to-leaf paths, the automaton is a
   trie of location steps: child-axis edges consume exactly the next
   element; descendant-axis edges may consume any later element, which
   is realized by keeping nodes with descendant out-edges alive in the
   frontier. A relative XPE starts with a semantic descendant step
   (Xpe.semantic_steps), so it shares the same machinery. An XPE accepts
   as soon as its last step is consumed (prefix semantics).

   Edges are a per-node hash table keyed by (axis, node test); node
   tests carry interned names, so following an edge is one O(1) lookup
   and firing an element consults at most four keys (child/descendant ×
   name/wildcard) — per-element work is bounded by the automaton's
   branching into the publication, not by the table size.

   Attribute predicates are verified lazily: accepting nodes store the
   original XPE, and payloads whose XPE carries predicates are
   re-checked with the exact evaluator.

   Removal prunes eagerly: when the last payload under a trail of
   states goes, the now-dead suffix of the trail is unlinked, so the
   automaton shrinks back to what a fresh build would allocate
   ([state_count] = [allocated_states] is an audited invariant — a
   churning broker must not leak states). *)

open Xroute_xpath
module Symbol = Xroute_support.Symbol

type edge_key = Xpe.axis * Xpe.nodetest

type 'a node = {
  id : int;
  edges : (edge_key, 'a node) Hashtbl.t;
  mutable desc_edges : int; (* outgoing Desc-axis edges, for O(1) aliveness *)
  (* accepting entries: the source XPE (for predicate re-checks) plus
     its payloads *)
  mutable accepts : (Xpe.t * 'a list ref) list;
}

type 'a t = {
  root : 'a node;
  mutable next_id : int;
  mutable size : int; (* stored payloads *)
  mutable states : int;
  mutable match_ops : int; (* cumulative matching work, for the bench *)
}

let fresh_node id = { id; edges = Hashtbl.create 4; desc_edges = 0; accepts = [] }

let create () = { root = fresh_node 0; next_id = 1; size = 0; states = 1; match_ops = 0 }

let size t = t.size
let allocated_states t = t.states
let match_ops t = t.match_ops

(* Live states, counted by walking the trie. Removal prunes eagerly, so
   this must coincide with [allocated_states]; the walk is kept (rather
   than returning the counter) so tests and the invariant audit can
   catch a leak. *)
let state_count t =
  let rec walk node = Hashtbl.fold (fun _ child acc -> acc + walk child) node.edges 1 in
  walk t.root

(* Steps of an XPE normalized for the index: predicates do not take part
   in the automaton (they are re-checked at accept time). *)
let index_steps xpe =
  List.map (fun (s : Xpe.step) -> (s.Xpe.axis, s.Xpe.test)) (Xpe.semantic_steps xpe)

let add_edge t node key =
  match Hashtbl.find_opt node.edges key with
  | Some child -> child
  | None ->
    let child = fresh_node t.next_id in
    t.next_id <- t.next_id + 1;
    t.states <- t.states + 1;
    Hashtbl.replace node.edges key child;
    if fst key = Xpe.Desc then node.desc_edges <- node.desc_edges + 1;
    child

let insert t xpe payload =
  let final = List.fold_left (fun node key -> add_edge t node key) t.root (index_steps xpe) in
  (match List.find_opt (fun (x, _) -> Xpe.equal x xpe) final.accepts with
  | Some (_, payloads) -> payloads := payload :: !payloads
  | None -> final.accepts <- (xpe, ref [ payload ]) :: final.accepts);
  t.size <- t.size + 1

(* Remove payloads selected by [pred] under the exact XPE, then prune:
   walking back up the trail, every state left with no accepting entry
   and no outgoing edge is unlinked from its parent. The automaton ends
   exactly as a fresh build of the surviving XPEs would. *)
let remove t xpe pred =
  let rec walk node = function
    | [] ->
      List.iter
        (fun (x, payloads) ->
          if Xpe.equal x xpe then begin
            let kept = List.filter (fun p -> not (pred p)) !payloads in
            t.size <- t.size - (List.length !payloads - List.length kept);
            payloads := kept
          end)
        node.accepts;
      node.accepts <- List.filter (fun (_, payloads) -> !payloads <> []) node.accepts
    | key :: rest -> (
      match Hashtbl.find_opt node.edges key with
      | Some child ->
        walk child rest;
        if child.accepts = [] && Hashtbl.length child.edges = 0 then begin
          Hashtbl.remove node.edges key;
          if fst key = Xpe.Desc then node.desc_edges <- node.desc_edges - 1;
          t.states <- t.states - 1
        end
      | None -> ())
  in
  walk t.root (index_steps xpe)

(* Does the node keep itself alive in the frontier? True when some
   outgoing edge uses the descendant axis — it may fire at any later
   position. *)
let has_desc_edge node = node.desc_edges > 0

(* Simulate the automaton over a path, collecting accepting payloads.

   Two frontiers: [fresh] nodes were reached exactly at the previous
   position boundary — both their child and descendant edges may fire on
   the next element; [alive] nodes have descendant out-edges and, once
   reached, persist forever — but only their descendant edges keep
   firing (their child edges were only valid immediately after they
   were reached). *)
let match_syms t syms attrs =
  let acc = ref [] in
  let seen_accept = Hashtbl.create 8 in
  let collect node =
    if not (Hashtbl.mem seen_accept node.id) then begin
      Hashtbl.add seen_accept node.id ();
      List.iter
        (fun (xpe, payloads) ->
          t.match_ops <- t.match_ops + 1;
          if (not (Xpe.has_predicates xpe)) || Xpe_eval.matches_syms xpe syms attrs then
            acc := List.rev_append !payloads !acc)
        node.accepts
    end
  in
  let alive_set = Hashtbl.create 16 in
  let alive = ref [] in
  let keep_alive node =
    if has_desc_edge node && not (Hashtbl.mem alive_set node.id) then begin
      Hashtbl.add alive_set node.id ();
      alive := node :: !alive
    end
  in
  let fresh = ref [ t.root ] in
  collect t.root;
  keep_alive t.root;
  let n = Array.length syms in
  for i = 0 to n - 1 do
    let sym = syms.(i) in
    (* Snapshot: nodes becoming alive while consuming this element must
       not fire on the same element. *)
    let alive_now = !alive in
    let next_set = Hashtbl.create 16 in
    let next = ref [] in
    let reach child =
      t.match_ops <- t.match_ops + 1;
      collect child;
      keep_alive child;
      if not (Hashtbl.mem next_set child.id) then begin
        Hashtbl.add next_set child.id ();
        next := child :: !next
      end
    in
    let follow node key = Option.iter reach (Hashtbl.find_opt node.edges key) in
    let fire ~allow_child node =
      if allow_child then begin
        follow node (Xpe.Child, Xpe.Name sym);
        follow node (Xpe.Child, Xpe.Star)
      end;
      follow node (Xpe.Desc, Xpe.Name sym);
      follow node (Xpe.Desc, Xpe.Star)
    in
    List.iter (fire ~allow_child:true) !fresh;
    (* alive nodes not in the fresh set fire descendant edges only *)
    let fresh_ids = Hashtbl.create 8 in
    List.iter (fun node -> Hashtbl.replace fresh_ids node.id ()) !fresh;
    List.iter
      (fun node -> if not (Hashtbl.mem fresh_ids node.id) then fire ~allow_child:false node)
      alive_now;
    fresh := !next
  done;
  List.rev !acc

let match_path t steps attrs = match_syms t (Symbol.intern_path steps) attrs

let match_names t steps = match_path t steps (Array.make (Array.length steps) [])

(* All stored (xpe, payload) pairs, for diagnostics and tests. *)
let to_list t =
  let acc = ref [] in
  let rec walk node =
    List.iter
      (fun (xpe, payloads) -> List.iter (fun p -> acc := (xpe, p) :: !acc) !payloads)
      node.accepts;
    Hashtbl.iter (fun _ child -> walk child) node.edges
  in
  walk t.root;
  List.rev !acc

(* ---------------- invariants (audit) ---------------- *)

(* Structural invariants; returns violation messages, empty when
   healthy. Eager pruning promises: no dead states (every non-root state
   has an accepting entry or an out-edge — equivalently [state_count] =
   [allocated_states]), the size counter equals the stored payloads, no
   empty accepting entry survives, and per-node Desc-edge counters are
   exact. *)
let check_invariants t =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let walked = ref 0 in
  let payloads_seen = ref 0 in
  let rec walk node =
    incr walked;
    if node.id <> t.root.id && node.accepts = [] && Hashtbl.length node.edges = 0 then
      add "NFA state %d is dead (no accepting entry, no out-edge)" node.id;
    let desc = Hashtbl.fold (fun k _ acc -> if fst k = Xpe.Desc then acc + 1 else acc) node.edges 0 in
    if desc <> node.desc_edges then
      add "NFA state %d counts %d Desc edges, has %d" node.id node.desc_edges desc;
    List.iter
      (fun (xpe, payloads) ->
        if !payloads = [] then
          add "NFA state %d keeps an empty accepting entry for %s" node.id (Xpe.to_string xpe);
        payloads_seen := !payloads_seen + List.length !payloads)
      node.accepts;
    Hashtbl.iter (fun _ child -> walk child) node.edges
  in
  walk t.root;
  if !walked <> t.states then
    add "NFA allocates %d states but only %d are reachable" t.states !walked;
  if !payloads_seen <> t.size then
    add "NFA stores %d payloads, size says %d" !payloads_seen t.size;
  List.rev !problems

(* Test hook: allocate an unreachable-in-spirit dead state (an edge to a
   child with no accepts and no edges) that eager pruning would never
   leave behind — the must-fail mutation for the audit. *)
let plant_orphan t =
  ignore (add_edge t t.root (Xpe.Child, Xpe.Name (Symbol.intern "__orphan__")))
