(* YFilter-style shared-prefix NFA index over a subscription set.

   The paper's evaluation contrasts its covering-organized routing table
   with YFilter (Diao et al.), the classic NFA-based XML filter: all
   XPEs are compiled into one automaton sharing common prefixes, and a
   publication is matched by simulating the automaton once, regardless
   of how many subscriptions are stored.

   Because publications here are root-to-leaf paths, the automaton is a
   trie of location steps: child-axis edges consume exactly the next
   element; descendant-axis edges may consume any later element, which
   is realized by keeping nodes with descendant out-edges alive in the
   frontier. A relative XPE starts with a semantic descendant step
   (Xpe.semantic_steps), so it shares the same machinery. An XPE accepts
   as soon as its last step is consumed (prefix semantics).

   Attribute predicates are verified lazily: accepting nodes store the
   original XPE, and payloads whose XPE carries predicates are
   re-checked with the exact evaluator. *)

open Xroute_xpath

type edge_key = { axis : Xpe.axis; test : Xpe.nodetest }

let edge_key_equal a b = a.axis = b.axis && Xpe.compare_nodetest a.test b.test = 0

type 'a node = {
  id : int;
  mutable edges : (edge_key * 'a node) list;
  (* accepting entries: the source XPE (for predicate re-checks) plus
     its payloads *)
  mutable accepts : (Xpe.t * 'a list ref) list;
}

type 'a t = {
  root : 'a node;
  mutable next_id : int;
  mutable size : int; (* stored payloads *)
  mutable states : int;
}

let create () =
  { root = { id = 0; edges = []; accepts = [] }; next_id = 1; size = 0; states = 1 }

let size t = t.size
let allocated_states t = t.states

(* Live states: reachable nodes that still lead to (or hold) a payload.
   [remove] prunes lazily, so this walks the trie instead of trusting
   the allocation counter — the two drift apart after removals. *)
let state_count t =
  let rec walk node =
    let live_below =
      List.fold_left
        (fun acc (_, child) -> match walk child with Some n -> acc + n | None -> acc)
        0 node.edges
    in
    if live_below > 0 || node.accepts <> [] then Some (live_below + 1) else None
  in
  match walk t.root with Some n -> n | None -> 1 (* the root is always live *)

(* Steps of an XPE normalized for the index: predicates do not take part
   in the automaton (they are re-checked at accept time). *)
let index_steps xpe =
  List.map (fun (s : Xpe.step) -> { axis = s.axis; test = s.test }) (Xpe.semantic_steps xpe)

let find_or_add_child t node key =
  match List.find_opt (fun (k, _) -> edge_key_equal k key) node.edges with
  | Some (_, child) -> child
  | None ->
    let child = { id = t.next_id; edges = []; accepts = [] } in
    t.next_id <- t.next_id + 1;
    t.states <- t.states + 1;
    node.edges <- (key, child) :: node.edges;
    child

let insert t xpe payload =
  let final =
    List.fold_left (fun node key -> find_or_add_child t node key) t.root (index_steps xpe)
  in
  (match List.find_opt (fun (x, _) -> Xpe.equal x xpe) final.accepts with
  | Some (_, payloads) -> payloads := payload :: !payloads
  | None -> final.accepts <- (xpe, ref [ payload ]) :: final.accepts);
  t.size <- t.size + 1

(* Remove payloads selected by [pred] under the exact XPE. Unreferenced
   automaton states are left in place (YFilter prunes lazily too); the
   stored size shrinks. *)
let remove t xpe pred =
  let rec walk node = function
    | [] ->
      List.iter
        (fun (x, payloads) ->
          if Xpe.equal x xpe then begin
            let kept = List.filter (fun p -> not (pred p)) !payloads in
            t.size <- t.size - (List.length !payloads - List.length kept);
            payloads := kept
          end)
        node.accepts;
      node.accepts <- List.filter (fun (_, payloads) -> !payloads <> []) node.accepts
    | key :: rest -> (
      match List.find_opt (fun (k, _) -> edge_key_equal k key) node.edges with
      | Some (_, child) -> walk child rest
      | None -> ())
  in
  walk t.root (index_steps xpe)

let test_admits (test : Xpe.nodetest) element =
  match test with Xpe.Star -> true | Xpe.Name n -> String.equal n element

(* Does the node keep itself alive in the frontier? True when some
   outgoing edge uses the descendant axis — it may fire at any later
   position. *)
let has_desc_edge node = List.exists (fun (k, _) -> k.axis = Xpe.Desc) node.edges

(* Simulate the automaton over a path, collecting accepting payloads.

   Two frontiers: [fresh] nodes were reached exactly at the previous
   position boundary — both their child and descendant edges may fire on
   the next element; [alive] nodes have descendant out-edges and, once
   reached, persist forever — but only their descendant edges keep
   firing (their child edges were only valid immediately after they
   were reached). *)
let match_path t steps attrs =
  let acc = ref [] in
  let seen_accept = Hashtbl.create 8 in
  let collect node =
    if not (Hashtbl.mem seen_accept node.id) then begin
      Hashtbl.add seen_accept node.id ();
      List.iter
        (fun (xpe, payloads) ->
          if (not (Xpe.has_predicates xpe)) || Xpe_eval.matches_steps xpe steps attrs then
            acc := List.rev_append !payloads !acc)
        node.accepts
    end
  in
  let alive_set = Hashtbl.create 16 in
  let alive = ref [] in
  let keep_alive node =
    if has_desc_edge node && not (Hashtbl.mem alive_set node.id) then begin
      Hashtbl.add alive_set node.id ();
      alive := node :: !alive
    end
  in
  let fresh = ref [ t.root ] in
  collect t.root;
  keep_alive t.root;
  let n = Array.length steps in
  for i = 0 to n - 1 do
    let element = steps.(i) in
    (* Snapshot: nodes becoming alive while consuming this element must
       not fire on the same element. *)
    let alive_now = !alive in
    let next_set = Hashtbl.create 16 in
    let next = ref [] in
    let reach child =
      collect child;
      keep_alive child;
      if not (Hashtbl.mem next_set child.id) then begin
        Hashtbl.add next_set child.id ();
        next := child :: !next
      end
    in
    let fire ~allow_child node =
      List.iter
        (fun (key, child) ->
          let usable = match key.axis with Xpe.Child -> allow_child | Xpe.Desc -> true in
          if usable && test_admits key.test element then reach child)
        node.edges
    in
    List.iter (fire ~allow_child:true) !fresh;
    (* alive nodes not in the fresh set fire descendant edges only *)
    let fresh_ids = Hashtbl.create 8 in
    List.iter (fun node -> Hashtbl.replace fresh_ids node.id ()) !fresh;
    List.iter
      (fun node -> if not (Hashtbl.mem fresh_ids node.id) then fire ~allow_child:false node)
      alive_now;
    fresh := !next
  done;
  List.rev !acc

let match_names t steps = match_path t steps (Array.make (Array.length steps) [])

(* All stored (xpe, payload) pairs, for diagnostics and tests. *)
let to_list t =
  let acc = ref [] in
  let rec walk node =
    List.iter
      (fun (xpe, payloads) -> List.iter (fun p -> acc := (xpe, p) :: !acc) !payloads)
      node.accepts;
    List.iter (fun (_, child) -> walk child) node.edges
  in
  walk t.root;
  List.rev !acc
