(* Event queue for the discrete-event simulator: a 4-ary min-heap over
   parallel arrays.

   The generic {!Heap} stores one boxed element per entry and calls a
   closure comparator on every sift step; at millions of in-flight
   events that is one record + one option allocation per event plus a
   call-heavy ordering. Here the key lives unboxed in a [floatarray]
   (time) and an [int array] (insertion sequence), the payload closure
   in a third parallel array, and ordering is two inline compares. The
   4-ary shape halves tree depth versus binary, which matters because
   sift-down dominates pop on large queues.

   Ordering is (time, seq) lexicographic with [seq] assigned internally
   at push, so equal-time events pop in FIFO order. That stability is
   load-bearing: per-link FIFO in the overlay (and with it the PR-3
   covering-race fix) relies on it. *)

type t = {
  mutable times : floatarray;
  mutable seqs : int array;
  mutable acts : (unit -> unit) array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 1024) () =
  let capacity = max capacity 4 in
  {
    times = Float.Array.create capacity;
    seqs = Array.make capacity 0;
    acts = Array.make capacity ignore;
    size = 0;
    next_seq = 0;
  }

let length t = t.size
let is_empty t = t.size = 0

let clear t =
  (* Drop closure references so the GC can reclaim captured state. *)
  Array.fill t.acts 0 t.size ignore;
  t.size <- 0

let grow t =
  let cap = Float.Array.length t.times in
  let cap' = cap * 2 in
  let times = Float.Array.create cap' in
  Float.Array.blit t.times 0 times 0 t.size;
  let seqs = Array.make cap' 0 in
  Array.blit t.seqs 0 seqs 0 t.size;
  let acts = Array.make cap' ignore in
  Array.blit t.acts 0 acts 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.acts <- acts

(* [less t i (time, seq)] : does slot [i] order before the key? *)
let[@inline] slot_less t i time seq =
  let ti = Float.Array.unsafe_get t.times i in
  ti < time || (ti = time && Array.unsafe_get t.seqs i < seq)

let[@inline] set_slot t i time seq act =
  Float.Array.unsafe_set t.times i time;
  Array.unsafe_set t.seqs i seq;
  Array.unsafe_set t.acts i act

let push t ~time act =
  if t.size = Float.Array.length t.times then grow t;
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  (* Sift the hole up from the end; write the new key once at rest. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 4 in
    if slot_less t parent time seq then continue := false
    else begin
      set_slot t !i
        (Float.Array.unsafe_get t.times parent)
        (Array.unsafe_get t.seqs parent)
        (Array.unsafe_get t.acts parent);
      i := parent
    end
  done;
  set_slot t !i time seq act

let min_time t = if t.size = 0 then None else Some (Float.Array.get t.times 0)

(* Index of the least-ordered child of [i], or -1 when [i] is a leaf. *)
let[@inline] min_child t i =
  let first = (4 * i) + 1 in
  if first >= t.size then -1
  else begin
    let last = min (first + 3) (t.size - 1) in
    let best = ref first in
    for c = first + 1 to last do
      if
        slot_less t c
          (Float.Array.unsafe_get t.times !best)
          (Array.unsafe_get t.seqs !best)
      then best := c
    done;
    !best
  end

let pop_with t f =
  if t.size = 0 then false
  else begin
    let time = Float.Array.get t.times 0 in
    let act = t.acts.(0) in
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      (* Sift the former last element down from the root. *)
      let ltime = Float.Array.get t.times n in
      let lseq = t.seqs.(n) in
      let lact = t.acts.(n) in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let c = min_child t !i in
        if c < 0 || not (slot_less t c ltime lseq) then continue := false
        else begin
          set_slot t !i
            (Float.Array.unsafe_get t.times c)
            (Array.unsafe_get t.seqs c)
            (Array.unsafe_get t.acts c);
          i := c
        end
      done;
      set_slot t !i ltime lseq lact
    end;
    t.acts.(t.size) <- ignore;
    f time act;
    true
  end

let to_sorted_list t =
  let rows = ref [] in
  for i = t.size - 1 downto 0 do
    rows := (Float.Array.get t.times i, t.seqs.(i), t.acts.(i)) :: !rows
  done;
  List.sort
    (fun (ta, sa, _) (tb, sb, _) ->
      match compare ta tb with 0 -> compare sa sb | c -> c)
    !rows
