(** Bounded single-producer/single-consumer queue for cross-domain
    handoff. Exactly one domain may call {!push} and exactly one domain
    may call {!pop}; under that contract the queue is lock-free and the
    consumer observes every write the producer made before pushing
    (publication safety via the two atomic cursors). *)

type 'a t

val create : int -> 'a t
(** [create capacity] makes a queue holding at least [capacity]
    elements (rounded up to a power of two). Raises [Invalid_argument]
    on a non-positive capacity. *)

val capacity : 'a t -> int
(** Actual ring size after rounding. *)

val push : 'a t -> 'a -> bool
(** [push t x] enqueues [x]; [false] means the ring is full and nothing
    was written. Producer domain only. *)

val pop : 'a t -> 'a option
(** [pop t] dequeues the oldest element, [None] when empty. Consumer
    domain only. *)

val length : 'a t -> int
(** Racy size estimate; exact when called from the producer or the
    consumer domain. *)

val is_empty : 'a t -> bool
