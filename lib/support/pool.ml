(* Allocation helpers for simulator hot paths.

   [Arena] is a chunked, append-only store of fixed-shape rows
   (int, int, float) — delivery-ledger entries, churn logs — kept in
   parallel unboxed chunk arrays so a million-row ledger costs three
   flat arrays per chunk instead of a million boxed tuples, and grows
   without copying existing rows.

   [Free] is a free-list object pool for scratch values (buffers,
   work arrays) that are acquired and released many times per run. *)

module Arena = struct
  type chunk = { a : int array; b : int array; t : floatarray }

  type t = {
    chunk_rows : int;
    mutable chunks : chunk array;
    mutable n_chunks : int;
    mutable len : int;
  }

  let create ?(chunk_rows = 65_536) () =
    let chunk_rows = max chunk_rows 16 in
    { chunk_rows; chunks = [||]; n_chunks = 0; len = 0 }

  let length t = t.len

  let new_chunk t =
    { a = Array.make t.chunk_rows 0;
      b = Array.make t.chunk_rows 0;
      t = Float.Array.create t.chunk_rows }

  let dummy_chunk =
    { a = [||]; b = [||]; t = Float.Array.create 0 }

  let add_chunk t =
    if t.n_chunks = Array.length t.chunks then begin
      let cap = max 4 (2 * Array.length t.chunks) in
      let chunks = Array.make cap dummy_chunk in
      Array.blit t.chunks 0 chunks 0 t.n_chunks;
      t.chunks <- chunks
    end;
    t.chunks.(t.n_chunks) <- new_chunk t;
    t.n_chunks <- t.n_chunks + 1

  let add t a b time =
    let row = t.len in
    let ci = row / t.chunk_rows and ri = row mod t.chunk_rows in
    if ci = t.n_chunks then add_chunk t;
    let c = t.chunks.(ci) in
    c.a.(ri) <- a;
    c.b.(ri) <- b;
    Float.Array.set c.t ri time;
    t.len <- row + 1;
    row

  let check t i =
    if i < 0 || i >= t.len then invalid_arg "Pool.Arena: row out of bounds"

  let get_a t i = check t i; t.chunks.(i / t.chunk_rows).a.(i mod t.chunk_rows)
  let get_b t i = check t i; t.chunks.(i / t.chunk_rows).b.(i mod t.chunk_rows)

  let get_time t i =
    check t i;
    Float.Array.get t.chunks.(i / t.chunk_rows).t (i mod t.chunk_rows)

  let iter t f =
    for ci = 0 to t.n_chunks - 1 do
      let c = t.chunks.(ci) in
      let base = ci * t.chunk_rows in
      let hi = min t.chunk_rows (t.len - base) - 1 in
      for ri = 0 to hi do
        f c.a.(ri) c.b.(ri) (Float.Array.get c.t ri)
      done
    done

  let clear t =
    t.chunks <- [||];
    t.n_chunks <- 0;
    t.len <- 0

  (* Order-sensitive 64-bit digest of rows (splitmix64-style mixing);
     used to compare large ledgers without materializing them as text.
     The incremental form ([digest_empty]/[digest_row]/[digest_close])
     lets a streaming consumer compute the same value {!digest} would
     report over an arena holding the same rows. *)
  let mix h k =
    let h = Int64.add h 0x9E3779B97F4A7C15L in
    let h = Int64.logxor h k in
    let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 30)) 0xBF58476D1CE4E5B9L in
    let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 27)) 0x94D049BB133111EBL in
    Int64.logxor h (Int64.shift_right_logical h 31)

  let digest_empty = 0L

  let digest_row h a b time =
    mix (mix (mix h (Int64.of_int a)) (Int64.of_int b)) (Int64.bits_of_float time)

  let digest_close h len = mix h (Int64.of_int len)

  let digest t =
    let h = ref digest_empty in
    iter t (fun a b time -> h := digest_row !h a b time);
    digest_close !h t.len
end

module Free = struct
  type 'a t = {
    make : unit -> 'a;
    reset : 'a -> unit;
    mutable free : 'a list;
    mutable live : int;
    mutable created : int;
  }

  let create ~make ~reset () = { make; reset; free = []; live = 0; created = 0 }

  let acquire t =
    t.live <- t.live + 1;
    match t.free with
    | x :: rest ->
      t.free <- rest;
      x
    | [] ->
      t.created <- t.created + 1;
      t.make ()

  let release t x =
    t.reset x;
    t.live <- t.live - 1;
    t.free <- x :: t.free

  let live t = t.live
  let created t = t.created
end
