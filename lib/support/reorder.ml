(* Sequence-keyed reorder buffer (see reorder.mli). Extracted from the
   daemon's shard pool so the same code runs under the production event
   loop and under the conc-audit's schedule explorer. *)

type ('p, 'o) slot =
  | Control of (unit -> unit)
  | Pending of { payload : 'p; mutable outcome : 'o option }

type ('p, 'o) t = {
  slots : (int, ('p, 'o) slot) Hashtbl.t;
  next_emit : int Tsync.Cell.t; (* owning-domain cursor *)
}

let create () =
  { slots = Hashtbl.create 4096; next_emit = Tsync.Cell.make ~name:"reorder.next_emit" 0 }

let put_control t ~seq thunk = Hashtbl.replace t.slots seq (Control thunk)

let put_pending t ~seq payload =
  Hashtbl.replace t.slots seq (Pending { payload; outcome = None })

let complete t ~seq outcome =
  match Hashtbl.find_opt t.slots seq with
  | Some (Pending p) ->
    p.outcome <- Some outcome;
    true
  | Some (Control _) | None -> false

let pop_ready t =
  let head = Tsync.Cell.get t.next_emit in
  match Hashtbl.find_opt t.slots head with
  | None -> `Wait
  | Some (Control thunk) ->
    Hashtbl.remove t.slots head;
    Tsync.Cell.set t.next_emit (head + 1);
    `Control thunk
  | Some (Pending p) -> (
    match p.outcome with
    | None -> `Wait (* head-of-line item still on its worker *)
    | Some outcome ->
      Hashtbl.remove t.slots head;
      Tsync.Cell.set t.next_emit (head + 1);
      `Emit (head, p.payload, outcome))

let next_emit t = Tsync.Cell.get t.next_emit
let pending t = Hashtbl.length t.slots
let is_empty t = Hashtbl.length t.slots = 0
