type t = {
  source : unit -> float;
  mutable last : float; (* last value handed out *)
  mutable offset : float; (* accumulated backward-step compensation *)
}

let create ~source () =
  let v = source () in
  { source; last = v; offset = 0.0 }

let now t =
  let raw = t.source () +. t.offset in
  if raw >= t.last then begin
    t.last <- raw;
    raw
  end
  else begin
    (* The source stepped backwards: absorb the step into the offset so
       this reading repeats the last value and later readings advance
       from it at the source's rate. *)
    t.offset <- t.offset +. (t.last -. raw);
    t.last
  end

let offset t = t.offset
