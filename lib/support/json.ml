type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let fail st msg = raise (Bad (Printf.sprintf "%s at offset %d" msg st.pos))

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length (st.s) && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.s then fail st "bad \\u escape";
          let hex = String.sub st.s st.pos 4 in
          st.pos <- st.pos + 4;
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail st "bad \\u escape"
          in
          (* Keep it simple: BMP code points as UTF-8; enough for our
             own emitters, which only escape control characters. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> fail st "bad escape");
        loop ())
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek st with Some c when is_num_char c -> true | _ -> false do
    advance st
  done;
  if st.pos = start then fail st "expected number";
  match float_of_string_opt (String.sub st.s start (st.pos - start)) with
  | Some f -> f
  | None -> fail st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((key, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec elems acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elems (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      Arr (elems [])
    end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
    else Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
