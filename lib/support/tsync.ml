(* Instrumented synchronization shim (see tsync.mli).

   Production: [runtime] is [None]; every operation is the raw
   [Stdlib.Atomic] op / field access behind one ref-read-and-branch.

   Check mode: [Sched.run] installs a runtime whose hook performs an
   effect at every instrumented access, suspending the current model
   thread. The scheduler picks the next thread (exploring the choice
   tree), applies the suspended access to the vector-clock state —
   detecting unsynchronized plain accesses — and resumes the thread,
   which then executes the real memory operation. Running the access
   bookkeeping at grant time, not at suspension time, keeps the
   happens-before analysis aligned with the order operations actually
   execute in. *)

type access_kind = Load | Store | Rmw

type runtime = { on_access : sync:bool -> loc:int -> name:string -> access_kind -> unit }

let runtime : runtime option ref = ref None

(* Location ids: process-global, allocation-time only (never hot). *)
let next_loc = Stdlib.Atomic.make 0
let fresh_locs n = Stdlib.Atomic.fetch_and_add next_loc n

let[@inline] hook ~sync ~loc ~name kind =
  match !runtime with None -> () | Some rt -> rt.on_access ~sync ~loc ~name kind

module Atomic = struct
  type 'a t = { cell : 'a Stdlib.Atomic.t; loc : int; name : string }

  let make ?(name = "atomic") v =
    { cell = Stdlib.Atomic.make v; loc = fresh_locs 1; name }

  let get t =
    hook ~sync:true ~loc:t.loc ~name:t.name Load;
    Stdlib.Atomic.get t.cell

  let set t v =
    hook ~sync:true ~loc:t.loc ~name:t.name Store;
    Stdlib.Atomic.set t.cell v

  let exchange t v =
    hook ~sync:true ~loc:t.loc ~name:t.name Rmw;
    Stdlib.Atomic.exchange t.cell v

  let compare_and_set t old nu =
    hook ~sync:true ~loc:t.loc ~name:t.name Rmw;
    Stdlib.Atomic.compare_and_set t.cell old nu

  let fetch_and_add t d =
    hook ~sync:true ~loc:t.loc ~name:t.name Rmw;
    Stdlib.Atomic.fetch_and_add t.cell d

  let incr t = ignore (fetch_and_add t 1)
end

module Cell = struct
  type 'a t = { mutable v : 'a; loc : int; name : string }

  let make ?(name = "cell") v = { v; loc = fresh_locs 1; name }

  let get t =
    hook ~sync:false ~loc:t.loc ~name:t.name Load;
    t.v

  let set t v =
    hook ~sync:false ~loc:t.loc ~name:t.name Store;
    t.v <- v
end

module Cells = struct
  type 'a t = { arr : 'a array; base : int; name : string }

  let make ?(name = "cells") n v = { arr = Array.make n v; base = fresh_locs n; name }
  let length t = Array.length t.arr

  let get t i =
    hook ~sync:false ~loc:(t.base + i) ~name:t.name Load;
    t.arr.(i)

  let set t i v =
    hook ~sync:false ~loc:(t.base + i) ~name:t.name Store;
    t.arr.(i) <- v
end

(* ---------------- the schedule-exploring checker ---------------- *)

module Sched = struct
  type race = {
    race_loc : string;
    race_first : int * access_kind;
    race_second : int * access_kind;
  }

  let kind_to_string = function Load -> "load" | Store -> "store" | Rmw -> "rmw"

  let race_to_string r =
    Printf.sprintf "race on %s: thread %d %s unordered with thread %d %s" r.race_loc
      (fst r.race_first)
      (kind_to_string (snd r.race_first))
      (fst r.race_second)
      (kind_to_string (snd r.race_second))

  type report = {
    schedule : int list;
    steps : int;
    races : race list;
    error : string option;
  }

  type access = { a_sync : bool; a_loc : int; a_name : string; a_kind : access_kind }

  type _ Effect.t += Yield : access -> unit Effect.t

  type outcome =
    | Done
    | Raised of exn
    | Suspended of access * (unit, outcome) Effect.Deep.continuation

  type status =
    | Not_started of (unit -> unit)
    | Paused of (unit, outcome) Effect.Deep.continuation
    | Finished

  (* Vector clocks: one per thread; joins through sync locations; plain
     locations keep the last write and the reads since it. *)
  type plain_state = {
    mutable wr : (int * access_kind * int array) option; (* tid, kind, clock *)
    mutable rds : (int * int array) list; (* tid, clock at read *)
  }

  let vc_join into from =
    Array.iteri (fun i v -> if v > into.(i) then into.(i) <- v) from

  let vc_leq a b =
    let ok = ref true in
    Array.iteri (fun i v -> if v > b.(i) then ok := false) a;
    !ok

  let step_limit = 200_000

  (* One schedule. [choose cp runnable] returns the forced decision for
     choice point [cp] ([None] = deterministic round-robin); choice
     points with index < [record_depth] are returned as DFS frames
     (runnable set, decision taken). *)
  let exec ?(record_depth = 0) ~choose threads =
    let n = Array.length threads in
    let statuses = Array.map (fun f -> Not_started f) threads in
    let pending : access option array = Array.make n None in
    let clocks = Array.init n (fun _ -> Array.make n 0) in
    let sync_clocks : (int, int array) Hashtbl.t = Hashtbl.create 64 in
    let plains : (int, plain_state) Hashtbl.t = Hashtbl.create 64 in
    let races = ref [] in
    let race_keys = Hashtbl.create 8 in
    let steps = ref 0 in
    let schedule = ref [] in
    let frames = ref [] in
    let cp = ref 0 in
    let rr = ref (n - 1) in
    let error = ref None in
    let current = ref (-1) in
    let prev_rt = !runtime in
    let record_race loc first second =
      let key = (loc, first, second) in
      if not (Hashtbl.mem race_keys key) then begin
        Hashtbl.replace race_keys key ();
        races := { race_loc = loc; race_first = first; race_second = second } :: !races
      end
    in
    let bookkeep t a =
      incr steps;
      let vc = clocks.(t) in
      if a.a_sync then begin
        let l =
          match Hashtbl.find_opt sync_clocks a.a_loc with
          | Some l -> l
          | None ->
            let l = Array.make n 0 in
            Hashtbl.replace sync_clocks a.a_loc l;
            l
        in
        (* load = acquire, store = release, rmw = both: the SC
           approximation of the OCaml 5 atomics. *)
        (match a.a_kind with
        | Load -> vc_join vc l
        | Store -> vc_join l vc
        | Rmw ->
          vc_join vc l;
          vc_join l vc)
      end
      else begin
        let p =
          match Hashtbl.find_opt plains a.a_loc with
          | Some p -> p
          | None ->
            let p = { wr = None; rds = [] } in
            Hashtbl.replace plains a.a_loc p;
            p
        in
        let ordered other = vc_leq other vc in
        (match p.wr with
        | Some (wt, wk, wvc) when wt <> t && not (ordered wvc) ->
          record_race a.a_name (wt, wk) (t, a.a_kind)
        | _ -> ());
        match a.a_kind with
        | Load -> p.rds <- (t, Array.copy vc) :: List.remove_assoc t p.rds
        | Store | Rmw ->
          List.iter
            (fun (rt, rvc) ->
              if rt <> t && not (vc_leq rvc vc) then record_race a.a_name (rt, Load) (t, a.a_kind))
            p.rds;
          p.wr <- Some (t, a.a_kind, Array.copy vc);
          p.rds <- []
      end;
      vc.(t) <- vc.(t) + 1
    in
    let resume t =
      current := t;
      let out =
        match statuses.(t) with
        | Not_started f ->
          Effect.Deep.match_with
            (fun () ->
              f ();
              Done)
            ()
            {
              retc = Fun.id;
              exnc = (fun e -> Raised e);
              effc =
                (fun (type a) (e : a Effect.t) ->
                  match e with
                  | Yield acc ->
                    Some
                      (fun (k : (a, outcome) Effect.Deep.continuation) -> Suspended (acc, k))
                  | _ -> None);
            }
        | Paused k -> Effect.Deep.continue k ()
        | Finished -> assert false
      in
      current := -1;
      out
    in
    runtime :=
      Some
        {
          on_access =
            (fun ~sync ~loc ~name kind ->
              (* Accesses outside a model thread (setup, post-run
                 invariant inspection) are not scheduling points. *)
              if !current >= 0 then
                Effect.perform (Yield { a_sync = sync; a_loc = loc; a_name = name; a_kind = kind }));
        };
    Fun.protect
      ~finally:(fun () -> runtime := prev_rt)
      (fun () ->
        let rec loop () =
          if !error = None then begin
            let runnable = ref [] in
            for t = n - 1 downto 0 do
              match statuses.(t) with
              | Finished -> ()
              | Not_started _ | Paused _ -> runnable := t :: !runnable
            done;
            match !runnable with
            | [] -> ()
            | runnable ->
              let t =
                match runnable with
                | [ t ] -> t
                | _ ->
                  let default () =
                    (* next runnable tid after !rr, cyclically *)
                    let cand = List.filter (fun t -> t > !rr) runnable in
                    match cand with t :: _ -> t | [] -> List.hd runnable
                  in
                  let t =
                    match choose !cp runnable with
                    | Some t when List.mem t runnable -> t
                    | Some _ | None -> default ()
                  in
                  rr := t;
                  schedule := t :: !schedule;
                  if !cp < record_depth then frames := (runnable, t) :: !frames;
                  incr cp;
                  t
              in
              (match pending.(t) with
              | Some a ->
                pending.(t) <- None;
                bookkeep t a
              | None -> ());
              (match resume t with
              | Done -> statuses.(t) <- Finished
              | Raised e ->
                error := Some (Printexc.to_string e);
                statuses.(t) <- Finished
              | Suspended (a, k) ->
                statuses.(t) <- Paused k;
                pending.(t) <- Some a);
              if !steps > step_limit then
                error := Some "livelock: schedule exceeded the step limit"
              else loop ()
          end
        in
        loop ());
    ( {
        schedule = List.rev !schedule;
        steps = !steps;
        races = List.rev !races;
        error = !error;
      },
      List.rev !frames )

  let run ?(prefix = []) threads =
    let parr = Array.of_list prefix in
    let choose cp _runnable = if cp < Array.length parr then Some parr.(cp) else None in
    fst (exec ~choose threads)

  type exploration = {
    distinct : int;
    total_steps : int;
    race_witnesses : (string * string) list;
    failure_witnesses : (string * string) list;
  }

  let schedule_to_string s = String.concat "," (List.map string_of_int s)

  let explore ?(depth = 6) ?(random = 0) ?(seed = 1) ?(max_schedules = 20_000) ~mk () =
    let seen = Hashtbl.create 1024 in
    let total_steps = ref 0 in
    let race_witnesses = ref [] in
    let race_seen = Hashtbl.create 8 in
    let failure_witnesses = ref [] in
    let fail_seen = Hashtbl.create 8 in
    let run_one ~record_depth ~choose =
      let threads, check = mk () in
      let report, frames = exec ~record_depth ~choose threads in
      let trace = schedule_to_string report.schedule in
      Hashtbl.replace seen trace ();
      total_steps := !total_steps + report.steps;
      List.iter
        (fun r ->
          let d = race_to_string r in
          if not (Hashtbl.mem race_seen d) then begin
            Hashtbl.replace race_seen d ();
            race_witnesses := (trace, d) :: !race_witnesses
          end)
        report.races;
      let fail d =
        if not (Hashtbl.mem fail_seen d) then begin
          Hashtbl.replace fail_seen d ();
          failure_witnesses := (trace, d) :: !failure_witnesses
        end
      in
      (match report.error with
      | Some e -> fail e
      | None -> (
        try check () with e -> fail (Printexc.to_string e)));
      frames
    in
    let choose_of_prefix prefix cp _runnable =
      if cp < Array.length prefix then Some prefix.(cp) else None
    in
    (* Bounded-exhaustive DFS over the first [depth] decisions. A call
       owns the choice points at indices >= its prefix length: it runs
       the default extension once, then recurses on every alternative
       decision at every owned choice point. Alternatives differ from
       the taken decision (and from each other) at their branch index,
       so no schedule is executed twice. *)
    let budget = ref max_schedules in
    let rec dfs prefix =
      if !budget > 0 then begin
        decr budget;
        let frames =
          Array.of_list (run_one ~record_depth:depth ~choose:(choose_of_prefix prefix))
        in
        for i = Array.length frames - 1 downto Array.length prefix do
          let runnable, chosen = frames.(i) in
          List.iter
            (fun sib ->
              if sib <> chosen then begin
                let next = Array.init (i + 1) (fun j -> snd frames.(j)) in
                next.(i) <- sib;
                dfs next
              end)
            runnable
        done
      end
    in
    dfs [||];
    (* Seeded random walks: random decisions for the first 64 choice
       points, round-robin beyond (keeps every walk finite). *)
    for r = 1 to random do
      let prng = Prng.create (seed + (r * 7919)) in
      let choose cp runnable =
        if cp < 64 then Some (List.nth runnable (Prng.int prng (List.length runnable)))
        else None
      in
      ignore (run_one ~record_depth:0 ~choose)
    done;
    {
      distinct = Hashtbl.length seen;
      total_steps = !total_steps;
      race_witnesses = List.rev !race_witnesses;
      failure_witnesses = List.rev !failure_witnesses;
    }
end
