(** Hash-consed symbol table: element/attribute names interned into
    small integers, so hot-path name comparisons are int equality.

    The table is global and append-only. Interning is thread-safe;
    {!name} never takes a lock.

    Determinism: symbol ids depend on interning order, so orderings that
    reach routing decisions must use {!compare_name} (lexicographic on
    the original strings — independent of creation order), never
    {!compare}. *)

type t = private int

(** Intern a name, returning its symbol. Idempotent: equal strings map
    to the same symbol forever. *)
val intern : string -> t

(** The symbol a name is already interned as, if any. *)
val find : string -> t option

(** The original string of a symbol. O(1), lock-free. *)
val name : t -> string

val id : t -> int
val equal : t -> t -> bool

(** Order by id (creation order) — for maps only; never let this reach a
    routing decision. *)
val compare : t -> t -> int

(** Order by original name: the same order [String.compare] gave before
    interning, whatever order symbols were created in. *)
val compare_name : t -> t -> int

val hash : t -> int

(** Distinct names interned so far. *)
val count : unit -> int

(** Intern every element of a path. *)
val intern_path : string array -> t array

val pp : Format.formatter -> t -> unit
