(** Minimal JSON reader for validation tooling.

    The repo emits JSON by hand (metrics exposition, bench reports,
    Chrome trace events, flight-recorder dumps); this is the matching
    reader so tests can check those emissions are actually well-formed
    without pulling in an external dependency. It parses the full JSON
    grammar (objects, arrays, strings with escapes, numbers, literals)
    but is tuned for readability over speed — do not put it on a hot
    path. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Parse a complete JSON document; trailing garbage is an error. *)
val parse : string -> (t, string) result

(** Object field lookup (first match). *)
val member : string -> t -> t option

val to_num : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
