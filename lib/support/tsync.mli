(** Instrumented synchronization shim for the lock-free hot paths.

    The daemon's shard pool is built from a handful of cross-domain
    primitives: atomic cursors/counters, plain cells whose ownership is
    handed between domains through those atomics, and the arrays behind
    the SPSC rings. In production nothing here costs more than a read of
    one global [ref] and a branch per operation — every call compiles
    down to the raw [Stdlib.Atomic] op or field access.

    In {e check mode} ([xroute_check --conc-audit]) a runtime is
    installed and every operation becomes a scheduling point of a
    cooperative scheduler plus an event fed to a vector-clock
    happens-before race detector:

    - {!Atomic} operations are synchronizing: a load acquires the
      location's clock, a store releases the thread's clock into it, an
      RMW does both. This is the sequentially-consistent approximation
      of the OCaml 5 memory model — sound for the release/acquire
      chains the pool relies on.
    - {!Cell} and {!Cells} operations are {e plain}: two accesses to
      the same location by different threads, neither ordered before
      the other by the acquired clocks, are reported as a data race.

    The scheduler ({!Sched}) runs a fixed set of model threads on one
    domain, context-switching at every instrumented access. Schedules
    are explored bounded-exhaustively (DFS over the first [depth]
    scheduling choices, deterministic round-robin beyond) and by seeded
    random walks; each completed schedule re-checks the model's own
    invariants. The witness of any failure is the decision trace that
    reproduces it. *)

type access_kind = Load | Store | Rmw

(** Installed by {!Sched}; [None] (the default, production) makes every
    hook a no-op. The hook fires {e before} the underlying memory
    operation executes. [sync] distinguishes {!Atomic} accesses from
    plain {!Cell}/{!Cells} accesses. *)
type runtime = { on_access : sync:bool -> loc:int -> name:string -> access_kind -> unit }

val runtime : runtime option ref

(** Instrumented [Stdlib.Atomic]. *)
module Atomic : sig
  type 'a t

  val make : ?name:string -> 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
end

(** Instrumented plain mutable cell: a location whose cross-thread
    ownership must be carried by {!Atomic} release/acquire chains. *)
module Cell : sig
  type 'a t

  val make : ?name:string -> 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
end

(** Instrumented plain array: one race-detector location per index,
    one flat [array] in memory (the SPSC slot layout). *)
module Cells : sig
  type 'a t

  val make : ?name:string -> int -> 'a -> 'a t
  val length : 'a t -> int
  val get : 'a t -> int -> 'a
  val set : 'a t -> int -> 'a -> unit
end

(** The cooperative schedule-exploring checker. Single-domain: a model
    must not be run while real domains are using instrumented state. *)
module Sched : sig
  (** A data race: two plain accesses to one location, unordered by
      happens-before. *)
  type race = {
    race_loc : string;  (** location name of the racy cell *)
    race_first : int * access_kind;  (** earlier access: thread, kind *)
    race_second : int * access_kind;  (** later access: thread, kind *)
  }

  val race_to_string : race -> string

  (** Outcome of one schedule. [steps] counts instrumented accesses;
      [schedule] is the decision trace — the thread chosen at each
      scheduling point where more than one thread was runnable. *)
  type report = {
    schedule : int list;
    steps : int;
    races : race list;
    error : string option;  (** exception raised by a model thread *)
  }

  val run : ?prefix:int list -> (unit -> unit) array -> report
  (** [run ~prefix threads] executes the threads to completion under
      the installed-by-[run] runtime: decisions are taken from [prefix]
      while it lasts, then deterministic round-robin. Restores the
      previous runtime on exit. *)

  (** Aggregate over an exploration. [distinct] counts distinct
      decision traces executed; [witnesses] pair each failing trace
      (rendered ["t,t,..."] ) with its diagnosis. *)
  type exploration = {
    distinct : int;
    total_steps : int;
    race_witnesses : (string * string) list;
    failure_witnesses : (string * string) list;
  }

  val explore :
    ?depth:int ->
    ?random:int ->
    ?seed:int ->
    ?max_schedules:int ->
    mk:(unit -> (unit -> unit) array * (unit -> unit)) ->
    unit ->
    exploration
  (** [explore ~depth ~random ~seed ~mk ()] instantiates a fresh model
      per schedule via [mk] — the returned thunk re-checks the model's
      invariants after the schedule completes (raise to fail) — and
      runs (a) the bounded-exhaustive DFS over the first [depth]
      scheduling choices (default 6), then (b) [random] (default 0)
      seeded random schedules. [max_schedules] (default 20_000) caps
      the DFS. *)

  val schedule_to_string : int list -> string
end
