(* Bounded single-producer/single-consumer queue for cross-domain
   handoff. One designated producer domain calls [push]; one designated
   consumer domain calls [pop]. The ring carries ['a option] slots and
   publishes through two monotone cursors, so the OCaml 5 memory model
   gives the consumer an acquire view of everything the producer wrote
   before bumping [tail] (and symmetrically for slot reuse through
   [head]). No locks, no allocation on the hot path beyond the [Some]
   cell.

   Built on [Tsync]: the cursors are instrumented atomics and the slot
   array an instrumented plain array, so in production the ring
   compiles to the raw atomic ops while under [xroute_check
   --conc-audit] every access is a scheduling point of the
   schedule-exploring race detector — which is exactly what certifies
   the release/acquire argument above instead of taking it on faith. *)

type 'a t = {
  slots : 'a option Tsync.Cells.t;
  mask : int;
  head : int Tsync.Atomic.t; (* next slot to pop; owned by the consumer *)
  tail : int Tsync.Atomic.t; (* next slot to fill; owned by the producer *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create capacity =
  if capacity <= 0 then invalid_arg "Spsc.create: capacity must be positive";
  let cap = pow2 capacity 1 in
  {
    slots = Tsync.Cells.make ~name:"spsc.slot" cap None;
    mask = cap - 1;
    head = Tsync.Atomic.make ~name:"spsc.head" 0;
    tail = Tsync.Atomic.make ~name:"spsc.tail" 0;
  }

let capacity t = Tsync.Cells.length t.slots

(* Racy by nature (either cursor may move underneath the caller), but
   monotonicity keeps it a safe estimate: never negative, and exact
   when called from the producer or consumer domain. *)
let length t = max 0 (Tsync.Atomic.get t.tail - Tsync.Atomic.get t.head)

let is_empty t = length t = 0

let push t x =
  let tail = Tsync.Atomic.get t.tail in
  let head = Tsync.Atomic.get t.head in
  if tail - head >= Tsync.Cells.length t.slots then false
  else begin
    Tsync.Cells.set t.slots (tail land t.mask) (Some x);
    (* Release: the slot write above happens-before any consumer that
       observes the new tail. *)
    Tsync.Atomic.set t.tail (tail + 1);
    true
  end

let pop t =
  let head = Tsync.Atomic.get t.head in
  let tail = Tsync.Atomic.get t.tail in
  if head >= tail then None
  else begin
    let slot = head land t.mask in
    let x = Tsync.Cells.get t.slots slot in
    (* Drop the reference so the value is collectable before the ring
       wraps, then release the slot back to the producer. *)
    Tsync.Cells.set t.slots slot None;
    Tsync.Atomic.set t.head (head + 1);
    x
  end
