(** Monotonic clock wrapper over an arbitrary (possibly stepping) time
    source.

    The daemon stamps spans with wall-clock milliseconds; NTP steps and
    manual clock changes can move that source backwards, which would
    produce negative span durations. [now] compensates: whenever the raw
    source reads earlier than the last value handed out, the difference
    is folded into a standing offset so time resumes from the last
    reading and keeps advancing with the source.

    The source is injected (no [Unix] dependency here): the daemon
    passes [Unix.gettimeofday () *. 1000.]; tests pass a scripted
    source. The simulator does not use this module at all — virtual
    time is monotone by construction. *)

type t

(** [create ~source ()] samples [source] once to anchor the clock.
    [source] must return milliseconds. *)
val create : source:(unit -> float) -> unit -> t

(** Current time in ms: never less than any previous [now] result. *)
val now : t -> float

(** Total compensation applied so far (ms); 0 while the source has only
    moved forward. *)
val offset : t -> float
