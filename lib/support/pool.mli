(** Allocation helpers for simulator hot paths: a chunked row arena and
    a free-list object pool. *)

(** Append-only arena of (int, int, float) rows stored in parallel
    unboxed chunk arrays. Growing never copies existing rows; a row is
    addressed by the dense index returned from {!Arena.add}. Used for
    delivery ledgers at million-client scale. *)
module Arena : sig
  type t

  val create : ?chunk_rows:int -> unit -> t
  val length : t -> int

  (** Append a row; returns its index. *)
  val add : t -> int -> int -> float -> int

  val get_a : t -> int -> int
  val get_b : t -> int -> int
  val get_time : t -> int -> float

  (** Iterate rows in insertion order. *)
  val iter : t -> (int -> int -> float -> unit) -> unit

  val clear : t -> unit

  (** Order-sensitive 64-bit digest of the rows (length included) for
      comparing large ledgers without materializing them. *)
  val digest : t -> int64

  (** Incremental digest: [digest_close (fold digest_row digest_empty
      rows) n] over [n] rows equals {!digest} of an arena holding the
      same rows in the same order. *)

  val digest_empty : int64

  val digest_row : int64 -> int -> int -> float -> int64
  val digest_close : int64 -> int -> int64
end

(** Free-list pool of reusable scratch objects. [reset] runs on release
    so acquired values are always clean. *)
module Free : sig
  type 'a t

  val create : make:(unit -> 'a) -> reset:('a -> unit) -> unit -> 'a t
  val acquire : 'a t -> 'a
  val release : 'a t -> 'a -> unit

  (** Objects currently acquired. *)
  val live : 'a t -> int

  (** Objects ever constructed by [make]. *)
  val created : 'a t -> int
end
