(** Event queue for the discrete-event simulator: a 4-ary min-heap over
    parallel unboxed arrays.

    Entries are (time, action) pairs ordered by (time, insertion
    sequence); the sequence is assigned internally so that equal-time
    events pop in FIFO order. Compared to the generic {!Heap} this
    stores the ordering key unboxed (no per-event record, no closure
    comparator) — the hot path of million-event simulations. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool

(** Drop all entries (closure slots are released for the GC). *)
val clear : t -> unit

(** Enqueue [act] at absolute virtual time [time]. *)
val push : t -> time:float -> (unit -> unit) -> unit

(** Time of the next event to pop, if any. *)
val min_time : t -> float option

(** Pop the least (time, seq) entry and pass it to [f time act].
    Returns [false] on an empty queue without calling [f]. *)
val pop_with : t -> (float -> (unit -> unit) -> unit) -> bool

(** Pending entries as (time, seq, action) in pop order; the queue is
    left untouched. For tests and audits. *)
val to_sorted_list : t -> (float * int * (unit -> unit)) list
