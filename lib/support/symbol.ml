(* Hash-consed symbol table for element and attribute names.

   Routing hot paths compare element names constantly: every NFA edge
   fired, every node test evaluated, every bucket lookup. Interning each
   distinct name once into a small integer turns those comparisons into
   int equality and makes names usable as array/hashtable keys without
   hashing the string again.

   Determinism contract: interning order assigns ids, and ids leak into
   iteration orders of symbol-keyed hashtables — so NOTHING
   routing-visible may depend on id order. [compare] (by id) exists for
   building maps; every ordering that reaches a routing decision must go
   through [compare_name], which is the original lexicographic order and
   therefore independent of when symbols were created (test_symbol.ml
   pins this).

   Concurrency: the daemon handles each connection on its own thread —
   and, since the sharded match pool, decodes publications on worker
   domains — so interning and [name] lookups race across true parallel
   domains, not just preemptible systhreads. Writes stay serialized by a
   mutex (OCaml 5 [Mutex] establishes happens-before across domains).
   [name] stays lock-free, but lock-free across domains requires real
   publication: plain mutable-field reads may be arbitrarily stale under
   the OCaml 5 memory model, so [names] and [count] are [Atomic.t].
   [intern] fills the slot first and only then release-stores the array
   and the count; [name] acquire-loads [count] before touching the
   array, so any id below the count it observed has a fully published
   slot. *)

type t = int

type table = {
  by_name : (string, int) Hashtbl.t;
  names : string array Atomic.t; (* index = id; may have spare capacity *)
  count : int Atomic.t;
  lock : Mutex.t;
}

let table =
  { by_name = Hashtbl.create 256; names = Atomic.make (Array.make 256 "");
    count = Atomic.make 0; lock = Mutex.create () }

let id (s : t) = s
let equal (a : t) (b : t) = Int.equal a b
let compare (a : t) (b : t) = Int.compare a b
let hash (s : t) = s

let count () = Atomic.get table.count

let name (s : t) =
  (* Lock-free: acquire the count first — [intern] release-stores it
     after the slot and the (possibly grown) array, so seeing [s < n]
     guarantees the subsequent array read observes slot [s] filled. *)
  let n = Atomic.get table.count in
  if s >= 0 && s < n then (Atomic.get table.names).(s)
  else invalid_arg (Printf.sprintf "Symbol.name: unknown symbol %d" s)

let compare_name (a : t) (b : t) =
  if equal a b then 0 else String.compare (name a) (name b)

let locked f =
  Mutex.lock table.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock table.lock) f

(* Reads of [by_name] also take the lock: a systhread can be preempted
   mid-resize (resizing allocates), so an unguarded [find_opt] could see
   the table inconsistent. *)
let find str = locked (fun () -> Hashtbl.find_opt table.by_name str)

let intern str =
  locked @@ fun () ->
  match Hashtbl.find_opt table.by_name str with
  | Some id -> id
  | None ->
    let id = Atomic.get table.count in
    let names = Atomic.get table.names in
    let names =
      if id >= Array.length names then begin
        (* Copy-publish so concurrent [name] readers never see a
           half-grown array; fill the new slot before the store. *)
        let grown = Array.make (2 * Array.length names) "" in
        Array.blit names 0 grown 0 id;
        grown.(id) <- str;
        Atomic.set table.names grown;
        grown
      end
      else names
    in
    names.(id) <- str;
    (* Release: slot write above happens-before any reader that
       observes the bumped count. *)
    Atomic.set table.count (id + 1);
    Hashtbl.replace table.by_name str id;
    id

let intern_path steps = Array.map intern steps

let pp ppf s = Format.pp_print_string ppf (name s)
