(* Hash-consed symbol table for element and attribute names.

   Routing hot paths compare element names constantly: every NFA edge
   fired, every node test evaluated, every bucket lookup. Interning each
   distinct name once into a small integer turns those comparisons into
   int equality and makes names usable as array/hashtable keys without
   hashing the string again.

   Determinism contract: interning order assigns ids, and ids leak into
   iteration orders of symbol-keyed hashtables — so NOTHING
   routing-visible may depend on id order. [compare] (by id) exists for
   building maps; every ordering that reaches a routing decision must go
   through [compare_name], which is the original lexicographic order and
   therefore independent of when symbols were created (test_symbol.ml
   pins this).

   Concurrency: the daemon handles each connection on its own thread, so
   two threads may intern concurrently. Writes are serialized by a
   mutex. [name] stays lock-free: the id -> string table is a grow-only
   array published with a single field write after being filled, so a
   reader either sees the old array (covering every id it can have
   observed) or the new one. *)

type t = int

type table = {
  by_name : (string, int) Hashtbl.t;
  mutable names : string array; (* index = id; may have spare capacity *)
  mutable count : int;
  lock : Mutex.t;
}

let table =
  { by_name = Hashtbl.create 256; names = Array.make 256 ""; count = 0; lock = Mutex.create () }

let id (s : t) = s
let equal (a : t) (b : t) = Int.equal a b
let compare (a : t) (b : t) = Int.compare a b
let hash (s : t) = s

let count () = table.count

let name (s : t) =
  (* Lock-free: [names] and [count] are published only after the slot is
     written (see [intern]); a stale read still covers every id the
     caller can legitimately hold. *)
  let names = table.names in
  if s >= 0 && s < Array.length names then names.(s)
  else invalid_arg (Printf.sprintf "Symbol.name: unknown symbol %d" s)

let compare_name (a : t) (b : t) =
  if equal a b then 0 else String.compare (name a) (name b)

let locked f =
  Mutex.lock table.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock table.lock) f

(* Reads of [by_name] also take the lock: a systhread can be preempted
   mid-resize (resizing allocates), so an unguarded [find_opt] could see
   the table inconsistent. *)
let find str = locked (fun () -> Hashtbl.find_opt table.by_name str)

let intern str =
  locked @@ fun () ->
  match Hashtbl.find_opt table.by_name str with
  | Some id -> id
  | None ->
    let id = table.count in
    (if id >= Array.length table.names then begin
       (* Copy-publish so concurrent [name] readers never see a
          half-grown array. *)
       let grown = Array.make (2 * Array.length table.names) "" in
       Array.blit table.names 0 grown 0 id;
       table.names <- grown
     end);
    table.names.(id) <- str;
    table.count <- id + 1;
    Hashtbl.replace table.by_name str id;
    id

let intern_path steps = Array.map intern steps

let pp ppf s = Format.pp_print_string ppf (name s)
