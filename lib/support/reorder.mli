(** Sequence-keyed reorder buffer: the merge stage of the shard pool.

    Work items enter stamped with a global arrival sequence number and
    complete out of order on worker domains; the buffer re-serializes
    emission so seq [k] is released only after every seq below [k] —
    the mechanism that keeps the pool's output byte-identical to the
    sequential engine's.

    Two slot shapes mirror the daemon's traffic: a {e control} slot
    carries a thunk whose state transition already ran at arrival time
    and only its output emission waits for its turn; a {e pending} slot
    carries per-item payload and waits for a worker outcome delivered
    by {!complete}.

    Single-consumer: all operations belong to the owning (main) domain.
    The cursor is a [Tsync] cell so the concurrency audit verifies that
    ownership instead of assuming it. *)

type ('p, 'o) t
(** Buffer with pending payloads ['p] and worker outcomes ['o]. *)

val create : unit -> ('p, 'o) t

val put_control : ('p, 'o) t -> seq:int -> (unit -> unit) -> unit
(** Register a control slot: [thunk] runs when [seq] is emitted. *)

val put_pending : ('p, 'o) t -> seq:int -> 'p -> unit
(** Register a pending slot awaiting its worker outcome. *)

val complete : ('p, 'o) t -> seq:int -> 'o -> bool
(** Attach a worker outcome to its pending slot. [false] means the seq
    is unknown (or not pending) — a seq-contract violation the caller
    reports. *)

val pop_ready :
  ('p, 'o) t -> [ `Control of unit -> unit | `Emit of int * 'p * 'o | `Wait ]
(** Release the head of the emission order: [`Control thunk] or
    [`Emit (seq, payload, outcome)] advance the cursor and remove the
    slot (the caller runs/emits); [`Wait] means the head seq has not
    arrived or its outcome is still on a worker. *)

val next_emit : ('p, 'o) t -> int
(** The lowest sequence number not yet emitted. *)

val pending : ('p, 'o) t -> int
(** Slots currently buffered (either shape). *)

val is_empty : ('p, 'o) t -> bool
