(** XML document model: a tree of elements with attributes and character
    data. Routing decisions are made on element paths; attributes feed
    the predicate extension. *)

type t = {
  name : string;
  sym : Xroute_support.Symbol.t;  (** [name] interned at construction *)
  attrs : (string * string) list;
  children : t list;
  text : string;  (** concatenated character data directly under this element *)
}

type document = { root : t; doc_id : int }

val element : ?attrs:(string * string) list -> ?text:string -> string -> t list -> t

(** Element with no children. *)
val leaf : ?attrs:(string * string) list -> ?text:string -> string -> t

val name : t -> string

(** The element name as an interned symbol. *)
val sym : t -> Xroute_support.Symbol.t

val attrs : t -> (string * string) list
val children : t -> t list
val text : t -> string
val attr : t -> string -> string option

(** Pre-order fold over all element nodes. *)
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

(** Number of element nodes. *)
val size : t -> int

(** Maximum nesting depth (1 for a leaf). *)
val depth : t -> int

(** Structural equality (names, attributes in order, text, children). *)
val equal : t -> t -> bool

(** Distinct element names, sorted. *)
val element_names : t -> string list

val document : doc_id:int -> t -> document
