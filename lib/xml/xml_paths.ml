(* Decomposition of an XML document into root-to-leaf paths.

   Section 3.1 of the paper: before a document enters the network it is
   decomposed into its root-to-leaf paths; each path, annotated with a
   [path_id] and the [doc_id] of its document, is the unit of routing
   ("publication"). Subscribers transparently receive whole documents. *)

type publication = {
  doc_id : int;
  path_id : int;
  steps : string array; (* element names from the root to a leaf *)
  syms : Xroute_support.Symbol.t array; (* [steps] interned, position by position *)
  attrs : (string * string) list array; (* attributes at each position *)
  doc_size : int; (* serialized size in bytes of the source document *)
  path_count : int; (* how many path publications the document yields *)
}

(* The one place publications are born: [syms] is always [steps]
   interned, so matchers can rely on it without re-checking. *)
let make ~doc_id ~path_id ~steps ~attrs ~doc_size ~path_count =
  {
    doc_id;
    path_id;
    steps;
    syms = Xroute_support.Symbol.intern_path steps;
    attrs;
    doc_size;
    path_count;
  }

let pp_publication ppf p =
  Format.fprintf ppf "doc=%d path=%d /%s" p.doc_id p.path_id
    (String.concat "/" (Array.to_list p.steps))

let publication_to_string p = Format.asprintf "%a" pp_publication p

let key_of_steps steps = String.concat "\x00" (Array.to_list steps)

(* All root-to-leaf name sequences, left-to-right document order,
   including duplicates. Element symbols ride along from the tree, so
   decomposition never re-interns. *)
let raw_paths_symed root =
  let acc = ref [] in
  let rec walk rev_names rev_syms rev_attrs node =
    let rev_names = Xml_tree.name node :: rev_names in
    let rev_syms = Xml_tree.sym node :: rev_syms in
    let rev_attrs = Xml_tree.attrs node :: rev_attrs in
    match Xml_tree.children node with
    | [] ->
      acc :=
        ( Array.of_list (List.rev rev_names),
          Array.of_list (List.rev rev_syms),
          Array.of_list (List.rev rev_attrs) )
        :: !acc
    | children -> List.iter (walk rev_names rev_syms rev_attrs) children
  in
  walk [] [] [] root;
  List.rev !acc

let raw_paths root = List.map (fun (steps, _, attrs) -> (steps, attrs)) (raw_paths_symed root)

(* Distinct paths of a document as publications. Two leaves with the same
   element-name sequence produce one publication (the routing decision is
   identical); the first occurrence's attributes are kept. *)
let decompose ?(dedup = true) ~doc_id root =
  let doc_size = Xml_printer.byte_size root in
  let seen = Hashtbl.create 16 in
  let next_id = ref 0 in
  let pubs =
    List.filter_map
      (fun (steps, syms, attrs) ->
        let key = key_of_steps steps in
        if dedup && Hashtbl.mem seen key then None
        else begin
          Hashtbl.replace seen key ();
          let path_id = !next_id in
          incr next_id;
          Some { doc_id; path_id; steps; syms; attrs; doc_size; path_count = 0 }
        end)
      (raw_paths_symed root)
  in
  let n = List.length pubs in
  List.map (fun p -> { p with path_count = n }) pubs

let path_count root = List.length (raw_paths root)

let distinct_path_count root =
  let seen = Hashtbl.create 16 in
  List.iter (fun (steps, _) -> Hashtbl.replace seen (key_of_steps steps) ()) (raw_paths root);
  Hashtbl.length seen

(* Parse a "/a/b/c" string into a bare publication, for tests and the CLI. *)
let publication_of_string ?(doc_id = 0) ?(path_id = 0) s =
  let s = if String.length s > 0 && s.[0] = '/' then String.sub s 1 (String.length s - 1) else s in
  let parts = String.split_on_char '/' s in
  if List.exists (fun p -> p = "") parts then
    invalid_arg (Printf.sprintf "publication_of_string: empty step in %S" s);
  let steps = Array.of_list parts in
  make ~doc_id ~path_id ~steps
    ~attrs:(Array.make (Array.length steps) [])
    ~doc_size:(String.length s) ~path_count:1
