(* XML document model.

   The dissemination network treats a document as a tree of elements; text
   and attributes are carried along (and used by the attribute-predicate
   extension) but routing decisions are made on element paths. *)

type t = {
  name : string;
  sym : Xroute_support.Symbol.t; (* [name] interned at construction *)
  attrs : (string * string) list;
  children : t list;
  text : string; (* concatenated character data directly under this element *)
}

type document = {
  root : t;
  doc_id : int;
}

let element ?(attrs = []) ?(text = "") name children =
  { name; sym = Xroute_support.Symbol.intern name; attrs; children; text }

let leaf ?(attrs = []) ?(text = "") name = element ~attrs ~text name []

let name t = t.name
let sym t = t.sym
let attrs t = t.attrs
let children t = t.children
let text t = t.text

let attr t key = List.assoc_opt key t.attrs

let rec fold f acc t = List.fold_left (fold f) (f acc t) t.children

(* Number of element nodes. *)
let size t = fold (fun acc _ -> acc + 1) 0 t

let rec depth t =
  match t.children with
  | [] -> 1
  | children -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children

let rec equal a b =
  Xroute_support.Symbol.equal a.sym b.sym
  && List.length a.attrs = List.length b.attrs
  && List.for_all2 (fun (k, v) (k', v') -> String.equal k k' && String.equal v v') a.attrs b.attrs
  && String.equal a.text b.text
  && List.length a.children = List.length b.children
  && List.for_all2 equal a.children b.children

(* Distinct element names used in the document, sorted. *)
let element_names t =
  let module S = Set.Make (String) in
  let set = fold (fun acc n -> S.add n.name acc) S.empty t in
  S.elements set

let document ~doc_id root = { root; doc_id }
