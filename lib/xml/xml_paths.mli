(** Decomposition of XML documents into root-to-leaf path publications
    (Sec. 3.1 of the paper). *)

type publication = {
  doc_id : int;
  path_id : int;
  steps : string array;  (** element names from the root to a leaf *)
  syms : Xroute_support.Symbol.t array;
      (** [steps] interned position by position — what matchers consume *)
  attrs : (string * string) list array;  (** attributes at each position *)
  doc_size : int;  (** serialized size in bytes of the source document *)
  path_count : int;  (** how many path publications the document yields *)
}

(** Build a publication; [syms] is derived from [steps] by interning. *)
val make :
  doc_id:int ->
  path_id:int ->
  steps:string array ->
  attrs:(string * string) list array ->
  doc_size:int ->
  path_count:int ->
  publication

val pp_publication : Format.formatter -> publication -> unit
val publication_to_string : publication -> string

(** [decompose ~doc_id root] lists the document's root-to-leaf paths as
    publications. With [dedup] (default), structurally identical paths are
    emitted once. *)
val decompose : ?dedup:bool -> doc_id:int -> Xml_tree.t -> publication list

(** Number of root-to-leaf paths (with duplicates). *)
val path_count : Xml_tree.t -> int

(** Number of distinct root-to-leaf name sequences. *)
val distinct_path_count : Xml_tree.t -> int

(** Parse a ["/a/b/c"] string into a publication with empty attributes.
    @raise Invalid_argument on empty steps. *)
val publication_of_string : ?doc_id:int -> ?path_id:int -> string -> publication
